//===- tests/stats_test.cpp - DetectorStats observability tests -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact-value tests for the observability layer: every DetectorStats
/// counter on a hand-written event trace, the serial-equals-sharded
/// aggregation invariant across shard counts, the consistency of the
/// per-shard breakdown surfaced by `herd --stats`, the metrics registry
/// (support/Metrics.h) and interpreter profiler, golden-file tests for the
/// Chrome trace JSON and `--stats=json` serializations under a virtual
/// clock, and the reports-are-byte-identical guarantee with observability
/// on vs off.
///
/// Golden files live in tests/golden/; regenerate with
/// `HERD_UPDATE_GOLDEN=1 ./stats_test` after an intentional format change.
///
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "herd/Pipeline.h"
#include "herd/StatsJson.h"
#include "runtime/InterpProfiler.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

using namespace herd;

namespace {

constexpr AccessKind WR = AccessKind::Write;

/// The hand-written trace all exact-value tests share.  Location L, no
/// locks held anywhere:
///
///   1. T1 writes L   — cache miss; detector sees it; T1 owns L, filtered.
///   2. T1 writes L   — cache hit; never reaches the detector.
///   3. T2 writes L   — cache miss; L goes shared, which evicts T1's
///                      cached entry (the Section 7.2 fix); the event
///                      enters the trie (root node, no race yet).
///   4. T1 writes L   — cache miss again (step 3 evicted it); conflicts
///                      with T2's write, disjoint (empty) locksets: race.
template <typename Hooks> void playTrace(Hooks &H) {
  const LocationKey L = LocationKey::forField(ObjectId(5), FieldId(0));
  const ThreadId T1(1), T2(2);
  H.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  H.onThreadCreate(T1, ThreadId(0), ObjectId(1));
  H.onThreadCreate(T2, ThreadId(0), ObjectId(2));
  H.onAccess(T1, L, WR, SiteId());
  H.onAccess(T1, L, WR, SiteId());
  H.onAccess(T2, L, WR, SiteId());
  H.onAccess(T1, L, WR, SiteId());
}

void expectTraceStats(const RaceRuntimeStats &S) {
  EXPECT_EQ(S.EventsSeen, 4u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.CacheMisses, 3u);
  EXPECT_EQ(S.CacheEvictions, 1u);
  EXPECT_EQ(S.Detector.EventsIn, 3u);
  EXPECT_EQ(S.Detector.OwnedFiltered, 1u);
  EXPECT_EQ(S.Detector.WeakerFiltered, 0u);
  EXPECT_EQ(S.Detector.RacesReported, 1u);
  EXPECT_EQ(S.Detector.LocationsTracked, 1u);
  EXPECT_EQ(S.Detector.LocationsShared, 1u);
  // No program locks are held, but each thread carries its own dummy join
  // lock S_j (Section 2.3), so the trie is a root plus one node per
  // thread's singleton lockset {S_1} and {S_2}.
  EXPECT_EQ(S.Detector.TrieNodes, 3u);
}

void expectEqualStats(const RaceRuntimeStats &A, const RaceRuntimeStats &B) {
  EXPECT_EQ(A.EventsSeen, B.EventsSeen);
  EXPECT_EQ(A.CacheHits, B.CacheHits);
  EXPECT_EQ(A.CacheMisses, B.CacheMisses);
  EXPECT_EQ(A.CacheEvictions, B.CacheEvictions);
  EXPECT_EQ(A.Detector.EventsIn, B.Detector.EventsIn);
  EXPECT_EQ(A.Detector.OwnedFiltered, B.Detector.OwnedFiltered);
  EXPECT_EQ(A.Detector.WeakerFiltered, B.Detector.WeakerFiltered);
  EXPECT_EQ(A.Detector.RacesReported, B.Detector.RacesReported);
  EXPECT_EQ(A.Detector.LocationsTracked, B.Detector.LocationsTracked);
  EXPECT_EQ(A.Detector.LocationsShared, B.Detector.LocationsShared);
  EXPECT_EQ(A.Detector.TrieNodes, B.Detector.TrieNodes);
}

TEST(StatsTest, SerialCountersExactOnHandWrittenTrace) {
  RaceRuntime RT;
  playTrace(RT);
  expectTraceStats(RT.stats());
  EXPECT_EQ(RT.reporter().size(), 1u);
}

TEST(StatsTest, ShardedCountersExactAndEqualToSerial) {
  RaceRuntime Serial;
  playTrace(Serial);
  for (uint32_t Shards : {1u, 2u, 4u}) {
    ShardedRuntimeOptions Opts;
    Opts.NumShards = Shards;
    ShardedRuntime RT(Opts);
    playTrace(RT);
    RT.finish();
    expectTraceStats(RT.stats());
    expectEqualStats(Serial.stats(), RT.stats());

    // Ingest accounting: exactly the post-cache, post-ownership events
    // reach the shards (steps 3 and 4), all on the one shard L hashes to.
    std::vector<ShardStats> Breakdown = RT.shardStats();
    ASSERT_EQ(Breakdown.size(), size_t(Shards));
    uint64_t Ingested = 0, Batches = 0;
    for (const ShardStats &S : Breakdown) {
      Ingested += S.EventsIngested;
      Batches += S.BatchesIngested;
    }
    EXPECT_EQ(Ingested, 2u);
    EXPECT_GE(Batches, 1u);
  }
}

TEST(StatsTest, CountersMonotonicAsTraceGrows) {
  RaceRuntime RT;
  const LocationKey L = LocationKey::forField(ObjectId(5), FieldId(0));
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  RaceRuntimeStats Prev = RT.stats();
  for (int I = 0; I != 20; ++I) {
    RT.onAccess(ThreadId(1 + uint32_t(I % 2)), L, WR, SiteId());
    RaceRuntimeStats Now = RT.stats();
    EXPECT_GE(Now.EventsSeen, Prev.EventsSeen);
    EXPECT_GE(Now.CacheHits, Prev.CacheHits);
    EXPECT_GE(Now.CacheMisses, Prev.CacheMisses);
    EXPECT_GE(Now.Detector.EventsIn, Prev.Detector.EventsIn);
    EXPECT_GE(Now.Detector.RacesReported, Prev.Detector.RacesReported);
    EXPECT_GE(Now.Detector.LocationsTracked, Prev.Detector.LocationsTracked);
    Prev = Now;
  }
  EXPECT_EQ(Prev.EventsSeen, 20u);
}

TEST(StatsTest, PipelineStatsAgreeAcrossShardCounts) {
  Program P = testprogs::buildCounter(/*Locked=*/false, 25).P;
  ToolConfig SerialCfg = ToolConfig::full();
  SerialCfg.Seed = 5;
  PipelineResult Serial = runPipeline(P, SerialCfg);
  ASSERT_TRUE(Serial.Run.Ok) << Serial.Run.Error;
  EXPECT_TRUE(Serial.ShardBreakdown.empty());

  for (uint32_t Shards : {1u, 2u, 4u, 8u}) {
    ToolConfig Cfg = SerialCfg;
    Cfg.Shards = Shards;
    PipelineResult R = runPipeline(P, Cfg);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    expectEqualStats(Serial.Stats, R.Stats);
    EXPECT_EQ(Serial.Reports.size(), R.Reports.size());

    // The per-shard breakdown must be consistent with the aggregate.
    ASSERT_EQ(R.ShardBreakdown.size(), size_t(Shards));
    uint64_t Ingested = 0, Races = 0;
    size_t TrieNodes = 0;
    for (const ShardStats &S : R.ShardBreakdown) {
      Ingested += S.EventsIngested;
      Races += S.Detector.RacesReported;
      TrieNodes += S.Detector.TrieNodes;
    }
    EXPECT_EQ(Ingested,
              R.Stats.Detector.EventsIn - R.Stats.Detector.OwnedFiltered);
    EXPECT_EQ(Races, R.Stats.Detector.RacesReported);
    EXPECT_EQ(TrieNodes, R.Stats.Detector.TrieNodes);
    EXPECT_EQ(Races, R.Reports.size());
  }
}

TEST(StatsTest, QueueDepthHighWaterMarkIsBounded) {
  // Tiny batches, no producer-side filtering, and a deep trace: batches
  // must actually flow, and the queue high-water mark must never exceed
  // the configured backpressure bound.
  ShardedRuntimeOptions Opts;
  Opts.NumShards = 2;
  Opts.BatchCapacity = 4;
  Opts.QueueDepthBatches = 3;
  Opts.UseCache = false;
  Opts.UseOwnership = false;
  ShardedRuntime RT(Opts);
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  for (int I = 0; I != 400; ++I)
    RT.onAccess(ThreadId(1 + uint32_t(I % 2)),
                LocationKey::forField(ObjectId(uint32_t(I % 16)), FieldId(0)),
                WR, SiteId());
  RT.finish();
  uint64_t Batches = 0;
  for (const ShardStats &S : RT.shardStats()) {
    EXPECT_LE(S.MaxQueueDepthBatches, Opts.QueueDepthBatches);
    Batches += S.BatchesIngested;
  }
  EXPECT_GT(Batches, 0u);
}

//===----------------------------------------------------------------------===
// Metrics registry: exact values
//===----------------------------------------------------------------------===

TEST(MetricsTest, CounterExactValues) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("events");
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  // Same name -> same counter; new name -> fresh counter.
  Reg.counter("events").add(8);
  EXPECT_EQ(C.value(), 50u);
  EXPECT_EQ(Reg.counter("other").value(), 0u);
}

TEST(MetricsTest, GaugeValueAndHighWaterMark) {
  MetricsRegistry Reg;
  Gauge &G = Reg.gauge("depth");
  G.set(5);
  G.set(9);
  G.set(3);
  EXPECT_EQ(G.value(), 3);
  EXPECT_EQ(G.maxSeen(), 9);
  G.add(-10);
  EXPECT_EQ(G.value(), -7);
  EXPECT_EQ(G.maxSeen(), 9); // negatives never move the high-water mark
}

TEST(MetricsTest, HistogramLog2BucketEdges) {
  // Bucket 0 holds {0}; bucket B>0 holds [2^(B-1), 2^B).
  EXPECT_EQ(Histogram::log2Bucket(0), 0u);
  EXPECT_EQ(Histogram::log2Bucket(1), 1u);
  EXPECT_EQ(Histogram::log2Bucket(2), 2u);
  EXPECT_EQ(Histogram::log2Bucket(3), 2u);
  EXPECT_EQ(Histogram::log2Bucket(4), 3u);
  EXPECT_EQ(Histogram::log2Bucket(7), 3u);
  EXPECT_EQ(Histogram::log2Bucket(8), 4u);
  EXPECT_EQ(Histogram::log2Bucket(1023), 10u);
  EXPECT_EQ(Histogram::log2Bucket(1024), 11u);
  EXPECT_EQ(Histogram::log2Bucket(uint64_t(1) << 63), 64u);
  EXPECT_EQ(Histogram::log2Bucket(UINT64_MAX), 64u);
}

TEST(MetricsTest, HistogramExactValues) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("batch_size");
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty histogram reports 0, not UINT64_MAX
  for (uint64_t V : {0ull, 1ull, 3ull, 3ull, 8ull})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 15u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 8u);
  EXPECT_EQ(H.bucket(0), 1u); // {0}
  EXPECT_EQ(H.bucket(1), 1u); // {1}
  EXPECT_EQ(H.bucket(2), 2u); // {2,3}
  EXPECT_EQ(H.bucket(3), 0u); // [4,8)
  EXPECT_EQ(H.bucket(4), 1u); // [8,16)
}

TEST(MetricsTest, SnapshotsAreNameSorted) {
  MetricsRegistry Reg;
  Reg.counter("zebra").add(1);
  Reg.counter("alpha").add(2);
  Reg.gauge("mid").set(7);
  Reg.histogram("hist").record(3);
  auto Counters = Reg.counterValues();
  ASSERT_EQ(Counters.size(), 2u);
  EXPECT_EQ(Counters[0].first, "alpha");
  EXPECT_EQ(Counters[0].second, 2u);
  EXPECT_EQ(Counters[1].first, "zebra");
  auto Gauges = Reg.gaugeValues();
  ASSERT_EQ(Gauges.size(), 1u);
  EXPECT_EQ(Gauges[0].Name, "mid");
  EXPECT_EQ(Gauges[0].Value, 7);
  auto Hists = Reg.histogramValues();
  ASSERT_EQ(Hists.size(), 1u);
  EXPECT_EQ(Hists[0].Count, 1u);
  ASSERT_EQ(Hists[0].Buckets.size(), 1u);
  EXPECT_EQ(Hists[0].Buckets[0].first, 2u);
  EXPECT_EQ(Hists[0].Buckets[0].second, 1u);
}

TEST(MetricsTest, SpanRecordsVirtualTime) {
  VirtualClock Clock(/*TickNanos=*/7);
  MetricsRegistry Reg(&Clock);
  {
    Span S(&Reg, "phase-a", "phase");
    // ctor read 0 (now 7); dtor reads 7 (now 14).
  }
  {
    Span S(&Reg, "phase-b", "analysis", /*Tid=*/3);
    S.end();
    S.end(); // idempotent: must not record a second event
  }
  auto Events = Reg.traceEvents();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_EQ(Events[0].Name, "phase-a");
  EXPECT_EQ(Events[0].Phase, 'X');
  EXPECT_EQ(Events[0].StartNanos, 0u);
  EXPECT_EQ(Events[0].DurNanos, 7u);
  EXPECT_EQ(Events[0].Tid, 0u);
  EXPECT_EQ(Events[1].Name, "phase-b");
  EXPECT_EQ(Events[1].Category, "analysis");
  EXPECT_EQ(Events[1].Tid, 3u);
  EXPECT_EQ(Events[1].StartNanos, 14u);
}

TEST(MetricsTest, NullRegistrySpanIsANoOp) {
  Span S(nullptr, "nothing");
  S.end(); // must not dereference anything
}

TEST(MetricsTest, CounterSamplesAndThreadNames) {
  VirtualClock Clock(/*TickNanos=*/10);
  MetricsRegistry Reg(&Clock);
  Reg.nameThread(1, "shard 0");
  Reg.recordCounterSample("queue_depth", 1, 2);
  Reg.recordCounterSample("queue_depth", 1, 5);
  auto Events = Reg.traceEvents();
  ASSERT_EQ(Events.size(), 3u);
  EXPECT_EQ(Events[0].Phase, 'M');
  EXPECT_EQ(Events[0].Name, "shard 0");
  EXPECT_EQ(Events[1].Phase, 'C');
  EXPECT_EQ(Events[1].Value, 2);
  EXPECT_EQ(Events[1].StartNanos, 0u);
  EXPECT_EQ(Events[2].Value, 5);
  EXPECT_EQ(Events[2].StartNanos, 10u);
}

//===----------------------------------------------------------------------===
// Interpreter profiler
//===----------------------------------------------------------------------===

TEST(ProfilerTest, DispatchCountsExactAndSamplingCadence) {
  VirtualClock Clock;
  InterpProfiler Prof(&Clock, /*SampleEvery=*/4);
  int Sampled = 0;
  for (int I = 0; I != 10; ++I)
    if (Prof.onDispatch(Opcode::GetField))
      ++Sampled;
  EXPECT_EQ(Sampled, 2); // dispatches 4 and 8
  EXPECT_EQ(Prof.totalDispatches(), 10u);
  EXPECT_EQ(Prof.counts(Opcode::GetField).Dispatches, 10u);
  Prof.onDispatch(Opcode::Trace);
  EXPECT_EQ(Prof.instrumentedDispatches(), 1u);
}

TEST(ProfilerTest, SampleAttributionSplitsHookTime) {
  VirtualClock Clock;
  InterpProfiler Prof(&Clock, /*SampleEvery=*/1); // sample everything
  ASSERT_TRUE(Prof.onDispatch(Opcode::PutField));
  Prof.beginSample();
  EXPECT_TRUE(Prof.samplingActive());
  Prof.addHookNanos(30);
  Prof.endSample(Opcode::PutField, /*StepNanos=*/100);
  EXPECT_FALSE(Prof.samplingActive());
  const InterpProfiler::OpcodeCounts &C = Prof.counts(Opcode::PutField);
  EXPECT_EQ(C.Samples, 1u);
  EXPECT_EQ(C.StepNanos, 100u);
  EXPECT_EQ(C.HookNanos, 30u);
  EXPECT_EQ(Prof.totalSampledNanos(), 100u);
  EXPECT_EQ(Prof.totalHookNanos(), 30u);
}

TEST(ProfilerTest, RankedRowsOrderBySampledTime) {
  VirtualClock Clock;
  InterpProfiler Prof(&Clock, /*SampleEvery=*/1);
  auto Feed = [&](Opcode Op, uint64_t Nanos) {
    Prof.onDispatch(Op);
    Prof.beginSample();
    Prof.endSample(Op, Nanos);
  };
  Feed(Opcode::GetField, 10);
  Feed(Opcode::PutField, 200);
  Feed(Opcode::Call, 50);
  auto Rows = Prof.rankedRows();
  ASSERT_EQ(Rows.size(), 3u);
  EXPECT_EQ(Rows[0].Op, Opcode::PutField);
  EXPECT_EQ(Rows[1].Op, Opcode::Call);
  EXPECT_EQ(Rows[2].Op, Opcode::GetField);
  EXPECT_EQ(Rows[0].EstimatedNanos, 200u); // SampleEvery=1: estimate == raw
  std::string Table = renderProfileTable(Prof);
  EXPECT_NE(Table.find("putfield"), std::string::npos);
  EXPECT_NE(Table.find("getfield"), std::string::npos);
}

//===----------------------------------------------------------------------===
// Golden files: trace JSON and stats JSON under a virtual clock
//===----------------------------------------------------------------------===

/// Compares \p Actual against tests/golden/<name>; HERD_UPDATE_GOLDEN=1
/// rewrites the file instead (then check the diff in).
void expectMatchesGolden(const std::string &Name, const std::string &Actual) {
  std::string Path = std::string(HERD_GOLDEN_DIR) + "/" + Name;
  if (std::getenv("HERD_UPDATE_GOLDEN")) {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Actual;
    ASSERT_TRUE(Out.good()) << "cannot write " << Path;
    return;
  }
  std::ifstream In(Path, std::ios::binary);
  ASSERT_TRUE(In.good()) << "missing golden file " << Path
                         << " (run with HERD_UPDATE_GOLDEN=1 to create)";
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  EXPECT_EQ(Buffer.str(), Actual)
      << "golden mismatch for " << Path
      << "; regenerate with HERD_UPDATE_GOLDEN=1 if intentional";
}

TEST(GoldenTest, ChromeTraceJson) {
  VirtualClock Clock(/*TickNanos=*/500);
  MetricsRegistry Reg(&Clock);
  Reg.nameThread(1, "shard 0");
  {
    Span Parse(&Reg, "parse", "frontend");
    Span Inner(&Reg, "lex", "frontend");
  }
  {
    Span Batch(&Reg, "batch", "shard", /*Tid=*/1);
  }
  Reg.recordCounterSample("shard0.queue_depth", 1, 3);
  Reg.counter("run.instructions").add(1234);
  Reg.gauge("live_threads").set(4);
  expectMatchesGolden("trace_timeline.json", renderChromeTraceJson(Reg));
}

TEST(GoldenTest, StatsJsonDocument) {
  // A hand-built PipelineResult with every section populated, so the
  // golden pins the envelope, the key order and the number formats
  // without depending on wall-clock timings.
  PipelineResult R;
  R.Run.Ok = true;
  R.Run.InstructionsExecuted = 1000;
  R.Run.AccessEvents = 64;
  R.Run.ContextSwitches = 12;
  R.Run.ThreadsCreated = 3;
  R.Run.Output = {7, -2};
  R.AnalysisSeconds = 0.125;
  R.ExecSeconds = 0.5;
  R.Static.ReachableAccessStatements = 20;
  R.Static.ThreadLocalFiltered = 4;
  R.Static.SameThreadFiltered = 3;
  R.Static.CommonSyncFiltered = 2;
  R.Static.RaceSetSize = 11;
  R.Static.MayRacePairs = 9;
  R.Instr.TracesInserted = 11;
  R.Instr.TracesRemoved = 1;
  R.Instr.LoopsPeeled = 2;
  R.Stats.EventsSeen = 64;
  R.Stats.CacheHits = 40;
  R.Stats.CacheMisses = 24;
  R.Stats.Hook.FilterEnabled = true;
  R.Stats.Hook.FilterHits = 30;
  R.Stats.Hook.FilterMisses = 64;
  R.Stats.Hook.EpochBumps = 6;
  R.Stats.Hook.KeyInvalidations = 2;
  R.Stats.Hook.BatchFlushes = 4;
  R.Stats.Hook.BatchedEvents = 24;
  R.Stats.Detector.EventsIn = 24;
  R.Stats.Detector.RacesReported = 1;
  R.Stats.Detector.LocationsTracked = 5;
  R.Stats.Detector.LocationsShared = 2;
  R.Stats.Detector.TrieNodes = 7;
  ThreadCacheStats TC;
  TC.Thread = 1;
  TC.ReadHits = 10;
  TC.ReadMisses = 2;
  TC.WriteHits = 30;
  TC.WriteMisses = 22;
  R.Stats.PerThreadCache.push_back(TC);
  ShardStats Shard;
  Shard.EventsIngested = 24;
  Shard.BatchesIngested = 2;
  Shard.MaxQueueDepthBatches = 1;
  Shard.Detector.EventsIn = 24;
  Shard.Detector.RacesReported = 1;
  R.ShardBreakdown.push_back(Shard);
  R.FormattedRaces.push_back("race on \"quoted\" field");
  R.Trace.Ok = true;
  R.Dispatch = DispatchMode::Threaded;
  R.Fusion.ConstBinOpSites = 3;
  R.Fusion.ConstPutFieldSites = 1;
  R.Fusion.GetBinPutSites = 2;
  R.Fusion.BinOpBranchSites = 4;
  R.Fusion.GetFieldBinOpSites = 2;
  R.Fusion.BinOpPutFieldSites = 1;
  R.Fusion.BinOpMoveSites = 1;
  R.Fusion.BatchBlocks = 6;
  R.Fusion.BatchSteps = 21;
  R.Run.Fused.ConstBinOp = 30;
  R.Run.Fused.ConstPutField = 5;
  R.Run.Fused.GetBinPut = 12;
  R.Run.Fused.BinOpBranch = 40;
  R.Run.Fused.GetFieldBinOp = 8;
  R.Run.Fused.BinOpPutField = 3;
  R.Run.Fused.BinOpMove = 2;
  R.Run.BlockRetireHits = 9;
  R.Run.BlockRetiredSteps = 27;

  VirtualClock Clock(/*TickNanos=*/100);
  MetricsRegistry Reg(&Clock);
  Reg.counter("run.instructions").add(1000);
  Reg.gauge("shard0.queue_depth").set(2);
  Reg.histogram("batch_events").record(24);

  InterpProfiler Prof(&Clock, /*SampleEvery=*/4);
  for (int I = 0; I != 8; ++I)
    if (Prof.onDispatch(Opcode::PutField)) {
      Prof.beginSample();
      Prof.addHookNanos(25);
      Prof.endSample(Opcode::PutField, 75);
    }
  Prof.onDispatch(Opcode::Trace);

  expectMatchesGolden("stats_document.json",
                      renderStatsJson(R, &Reg, &Prof));
}

TEST(GoldenTest, StatsJsonSchemaEnvelopeIsStable) {
  // The schema pair is a compatibility contract with
  // scripts/check_stats_schema.py — bumping it is an intentional act.
  EXPECT_STREQ(StatsSchemaName, "herd-stats");
  EXPECT_EQ(StatsSchemaVersion, 1);
  PipelineResult Empty;
  std::string Doc = renderStatsJson(Empty);
  EXPECT_EQ(Doc.find("{\"schema\":\"herd-stats\",\"version\":1,"), 0u);
  EXPECT_EQ(Doc.back(), '\n');
}

//===----------------------------------------------------------------------===
// Observability must not change results
//===----------------------------------------------------------------------===

TEST(ObservabilityTest, ReportsByteIdenticalOnVsOff) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  for (uint32_t Shards : {0u, 3u}) {
    SCOPED_TRACE(std::to_string(Shards) + " shards");
    ToolConfig Off = ToolConfig::full();
    Off.Seed = 11;
    Off.Shards = Shards;
    PipelineResult ROff = runPipeline(P, Off);
    ASSERT_TRUE(ROff.Run.Ok) << ROff.Run.Error;

    MetricsRegistry Reg;
    InterpProfiler Prof;
    ToolConfig On = Off;
    On.Metrics = &Reg;
    On.Profiler = &Prof;
    PipelineResult ROn = runPipeline(P, On);
    ASSERT_TRUE(ROn.Run.Ok) << ROn.Run.Error;

    EXPECT_EQ(ROff.FormattedRaces, ROn.FormattedRaces);
    EXPECT_EQ(ROff.FormattedDeadlocks, ROn.FormattedDeadlocks);
    EXPECT_EQ(ROff.Run.Output, ROn.Run.Output);
    EXPECT_EQ(ROff.Run.InstructionsExecuted, ROn.Run.InstructionsExecuted);
    EXPECT_EQ(ROff.Run.ContextSwitches, ROn.Run.ContextSwitches);
    expectEqualStats(ROff.Stats, ROn.Stats);

    // And the observability run actually observed something.
    EXPECT_EQ(Prof.totalDispatches(), ROn.Run.InstructionsExecuted);
    EXPECT_FALSE(Reg.traceEvents().empty());
    EXPECT_EQ(Reg.counter("run.instructions").value(),
              ROn.Run.InstructionsExecuted);
    if (Shards != 0) {
      // Per-shard rows: a batch span on some shard tid >= 1.
      bool SawShardSpan = false;
      for (const TraceEvent &E : Reg.traceEvents())
        if (E.Phase == 'X' && E.Tid >= 1 && E.Name == "batch")
          SawShardSpan = true;
      EXPECT_TRUE(SawShardSpan);
    }
  }
}

TEST(ObservabilityTest, PipelinePhaseSpansAllPresent) {
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  MetricsRegistry Reg;
  ToolConfig Config = ToolConfig::full();
  Config.Metrics = &Reg;
  // The "fuse" span is a threaded-dispatch phase; pin the mode so this
  // holds in builds that default to switch dispatch.
  Config.Dispatch = DispatchMode::Threaded;
  PipelineResult R = runPipeline(P, Config);
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  std::set<std::string> Names;
  for (const TraceEvent &E : Reg.traceEvents())
    if (E.Phase == 'X')
      Names.insert(E.Name);
  for (const char *Phase :
       {"static-race", "points-to", "single-instance", "thread-analysis",
        "sync-analysis", "escape", "race-pairs", "plan", "instrument",
        "fuse", "execute", "detect-drain", "format-reports"})
    EXPECT_TRUE(Names.count(Phase)) << Phase;
}

} // namespace
