//===- tests/stats_test.cpp - DetectorStats observability tests -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact-value tests for the observability layer (detect/DetectorStats.h):
/// every counter on a hand-written event trace, the serial-equals-sharded
/// aggregation invariant across shard counts, and the consistency of the
/// per-shard breakdown surfaced by `herd --stats`.
///
//===----------------------------------------------------------------------===//

#include "TestPrograms.h"
#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "herd/Pipeline.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

constexpr AccessKind WR = AccessKind::Write;

/// The hand-written trace all exact-value tests share.  Location L, no
/// locks held anywhere:
///
///   1. T1 writes L   — cache miss; detector sees it; T1 owns L, filtered.
///   2. T1 writes L   — cache hit; never reaches the detector.
///   3. T2 writes L   — cache miss; L goes shared, which evicts T1's
///                      cached entry (the Section 7.2 fix); the event
///                      enters the trie (root node, no race yet).
///   4. T1 writes L   — cache miss again (step 3 evicted it); conflicts
///                      with T2's write, disjoint (empty) locksets: race.
template <typename Hooks> void playTrace(Hooks &H) {
  const LocationKey L = LocationKey::forField(ObjectId(5), FieldId(0));
  const ThreadId T1(1), T2(2);
  H.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  H.onThreadCreate(T1, ThreadId(0), ObjectId(1));
  H.onThreadCreate(T2, ThreadId(0), ObjectId(2));
  H.onAccess(T1, L, WR, SiteId());
  H.onAccess(T1, L, WR, SiteId());
  H.onAccess(T2, L, WR, SiteId());
  H.onAccess(T1, L, WR, SiteId());
}

void expectTraceStats(const RaceRuntimeStats &S) {
  EXPECT_EQ(S.EventsSeen, 4u);
  EXPECT_EQ(S.CacheHits, 1u);
  EXPECT_EQ(S.CacheMisses, 3u);
  EXPECT_EQ(S.CacheEvictions, 1u);
  EXPECT_EQ(S.Detector.EventsIn, 3u);
  EXPECT_EQ(S.Detector.OwnedFiltered, 1u);
  EXPECT_EQ(S.Detector.WeakerFiltered, 0u);
  EXPECT_EQ(S.Detector.RacesReported, 1u);
  EXPECT_EQ(S.Detector.LocationsTracked, 1u);
  EXPECT_EQ(S.Detector.LocationsShared, 1u);
  // No program locks are held, but each thread carries its own dummy join
  // lock S_j (Section 2.3), so the trie is a root plus one node per
  // thread's singleton lockset {S_1} and {S_2}.
  EXPECT_EQ(S.Detector.TrieNodes, 3u);
}

void expectEqualStats(const RaceRuntimeStats &A, const RaceRuntimeStats &B) {
  EXPECT_EQ(A.EventsSeen, B.EventsSeen);
  EXPECT_EQ(A.CacheHits, B.CacheHits);
  EXPECT_EQ(A.CacheMisses, B.CacheMisses);
  EXPECT_EQ(A.CacheEvictions, B.CacheEvictions);
  EXPECT_EQ(A.Detector.EventsIn, B.Detector.EventsIn);
  EXPECT_EQ(A.Detector.OwnedFiltered, B.Detector.OwnedFiltered);
  EXPECT_EQ(A.Detector.WeakerFiltered, B.Detector.WeakerFiltered);
  EXPECT_EQ(A.Detector.RacesReported, B.Detector.RacesReported);
  EXPECT_EQ(A.Detector.LocationsTracked, B.Detector.LocationsTracked);
  EXPECT_EQ(A.Detector.LocationsShared, B.Detector.LocationsShared);
  EXPECT_EQ(A.Detector.TrieNodes, B.Detector.TrieNodes);
}

TEST(StatsTest, SerialCountersExactOnHandWrittenTrace) {
  RaceRuntime RT;
  playTrace(RT);
  expectTraceStats(RT.stats());
  EXPECT_EQ(RT.reporter().size(), 1u);
}

TEST(StatsTest, ShardedCountersExactAndEqualToSerial) {
  RaceRuntime Serial;
  playTrace(Serial);
  for (uint32_t Shards : {1u, 2u, 4u}) {
    ShardedRuntimeOptions Opts;
    Opts.NumShards = Shards;
    ShardedRuntime RT(Opts);
    playTrace(RT);
    RT.finish();
    expectTraceStats(RT.stats());
    expectEqualStats(Serial.stats(), RT.stats());

    // Ingest accounting: exactly the post-cache, post-ownership events
    // reach the shards (steps 3 and 4), all on the one shard L hashes to.
    std::vector<ShardStats> Breakdown = RT.shardStats();
    ASSERT_EQ(Breakdown.size(), size_t(Shards));
    uint64_t Ingested = 0, Batches = 0;
    for (const ShardStats &S : Breakdown) {
      Ingested += S.EventsIngested;
      Batches += S.BatchesIngested;
    }
    EXPECT_EQ(Ingested, 2u);
    EXPECT_GE(Batches, 1u);
  }
}

TEST(StatsTest, CountersMonotonicAsTraceGrows) {
  RaceRuntime RT;
  const LocationKey L = LocationKey::forField(ObjectId(5), FieldId(0));
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  RaceRuntimeStats Prev = RT.stats();
  for (int I = 0; I != 20; ++I) {
    RT.onAccess(ThreadId(1 + uint32_t(I % 2)), L, WR, SiteId());
    RaceRuntimeStats Now = RT.stats();
    EXPECT_GE(Now.EventsSeen, Prev.EventsSeen);
    EXPECT_GE(Now.CacheHits, Prev.CacheHits);
    EXPECT_GE(Now.CacheMisses, Prev.CacheMisses);
    EXPECT_GE(Now.Detector.EventsIn, Prev.Detector.EventsIn);
    EXPECT_GE(Now.Detector.RacesReported, Prev.Detector.RacesReported);
    EXPECT_GE(Now.Detector.LocationsTracked, Prev.Detector.LocationsTracked);
    Prev = Now;
  }
  EXPECT_EQ(Prev.EventsSeen, 20u);
}

TEST(StatsTest, PipelineStatsAgreeAcrossShardCounts) {
  Program P = testprogs::buildCounter(/*Locked=*/false, 25).P;
  ToolConfig SerialCfg = ToolConfig::full();
  SerialCfg.Seed = 5;
  PipelineResult Serial = runPipeline(P, SerialCfg);
  ASSERT_TRUE(Serial.Run.Ok) << Serial.Run.Error;
  EXPECT_TRUE(Serial.ShardBreakdown.empty());

  for (uint32_t Shards : {1u, 2u, 4u, 8u}) {
    ToolConfig Cfg = SerialCfg;
    Cfg.Shards = Shards;
    PipelineResult R = runPipeline(P, Cfg);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    expectEqualStats(Serial.Stats, R.Stats);
    EXPECT_EQ(Serial.Reports.size(), R.Reports.size());

    // The per-shard breakdown must be consistent with the aggregate.
    ASSERT_EQ(R.ShardBreakdown.size(), size_t(Shards));
    uint64_t Ingested = 0, Races = 0;
    size_t TrieNodes = 0;
    for (const ShardStats &S : R.ShardBreakdown) {
      Ingested += S.EventsIngested;
      Races += S.Detector.RacesReported;
      TrieNodes += S.Detector.TrieNodes;
    }
    EXPECT_EQ(Ingested,
              R.Stats.Detector.EventsIn - R.Stats.Detector.OwnedFiltered);
    EXPECT_EQ(Races, R.Stats.Detector.RacesReported);
    EXPECT_EQ(TrieNodes, R.Stats.Detector.TrieNodes);
    EXPECT_EQ(Races, R.Reports.size());
  }
}

TEST(StatsTest, QueueDepthHighWaterMarkIsBounded) {
  // Tiny batches, no producer-side filtering, and a deep trace: batches
  // must actually flow, and the queue high-water mark must never exceed
  // the configured backpressure bound.
  ShardedRuntimeOptions Opts;
  Opts.NumShards = 2;
  Opts.BatchCapacity = 4;
  Opts.QueueDepthBatches = 3;
  Opts.UseCache = false;
  Opts.UseOwnership = false;
  ShardedRuntime RT(Opts);
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  for (int I = 0; I != 400; ++I)
    RT.onAccess(ThreadId(1 + uint32_t(I % 2)),
                LocationKey::forField(ObjectId(uint32_t(I % 16)), FieldId(0)),
                WR, SiteId());
  RT.finish();
  uint64_t Batches = 0;
  for (const ShardStats &S : RT.shardStats()) {
    EXPECT_LE(S.MaxQueueDepthBatches, Opts.QueueDepthBatches);
    Batches += S.BatchesIngested;
  }
  EXPECT_GT(Batches, 0u);
}

} // namespace
