//===- tests/baselines_test.cpp - Baseline detector tests -----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the comparison detectors: the exact O(N²) oracle, Eraser's
/// lockset state machine, and the vector-clock happens-before detector —
/// including the Section 8.3/2.2 behavioural differences the paper
/// documents.
///
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"
#include "baselines/NaiveDetector.h"
#include "baselines/VectorClockDetector.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

constexpr AccessKind RD = AccessKind::Read;
constexpr AccessKind WR = AccessKind::Write;

LocationKey keyOf(uint32_t Obj, uint32_t Field = 0) {
  return LocationKey::forField(ObjectId(Obj), FieldId(Field));
}

//===----------------------------------------------------------------------===
// Naive oracle.
//===----------------------------------------------------------------------===

TEST(NaiveDetectorTest, FindsExactRacyLocations) {
  NaiveDetector Oracle({/*UseOwnership=*/false, /*ModelJoin=*/false});
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  Oracle.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // race on 1
  Oracle.onAccess(ThreadId(1), keyOf(2), RD, SiteId());
  Oracle.onAccess(ThreadId(2), keyOf(2), RD, SiteId()); // reads: no race
  EXPECT_EQ(Oracle.racyLocations(), (std::set<LocationKey>{keyOf(1)}));
  EXPECT_EQ(Oracle.memRaceSize(keyOf(1)), 1u);
  EXPECT_EQ(Oracle.memRaceSize(keyOf(2)), 0u);
}

TEST(NaiveDetectorTest, LocksetsRespected) {
  NaiveDetector Oracle({false, false});
  Oracle.onMonitorEnter(ThreadId(1), LockId(9), false);
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  Oracle.onMonitorExit(ThreadId(1), LockId(9), false);
  Oracle.onMonitorEnter(ThreadId(2), LockId(9), false);
  Oracle.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  Oracle.onMonitorExit(ThreadId(2), LockId(9), false);
  EXPECT_TRUE(Oracle.racyLocations().empty());
}

TEST(NaiveDetectorTest, OwnershipFiltersInitialization) {
  NaiveDetector Oracle({/*UseOwnership=*/true, false});
  Oracle.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // owner init
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // handoff
  EXPECT_TRUE(Oracle.racyLocations().empty());
  // A third thread creates a genuine race with the second's access.
  Oracle.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(Oracle.racyLocations().size(), 1u);
}

TEST(NaiveDetectorTest, JoinDummyLocksOrderParentAfterChild) {
  NaiveDetector Oracle({false, /*ModelJoin=*/true});
  Oracle.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  Oracle.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(5));
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  Oracle.onThreadExit(ThreadId(1));
  Oracle.onThreadJoin(ThreadId(0), ThreadId(1));
  Oracle.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  EXPECT_TRUE(Oracle.racyLocations().empty());
}

//===----------------------------------------------------------------------===
// Eraser.
//===----------------------------------------------------------------------===

TEST(EraserTest, StateMachineProgression) {
  EraserDetector E;
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::Virgin);
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::Exclusive);
  E.onAccess(ThreadId(2), keyOf(1), RD, SiteId());
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::Shared);
  E.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::SharedModified);
}

TEST(EraserTest, ConsistentLockNeverReported) {
  EraserDetector E;
  for (uint32_t Round = 0; Round != 4; ++Round) {
    ThreadId T(1 + Round % 2);
    E.onMonitorEnter(T, LockId(9), false);
    E.onAccess(T, keyOf(1), WR, SiteId());
    E.onMonitorExit(T, LockId(9), false);
  }
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EraserTest, EmptyCandidateSetReported) {
  EraserDetector E;
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  E.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // no locks at all
  EXPECT_EQ(E.reportedLocations().size(), 1u);
}

TEST(EraserTest, InitializationGraceInExclusiveState) {
  EraserDetector E;
  // First thread may access lock-free as often as it wants.
  for (int I = 0; I != 5; ++I)
    E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EraserTest, MtrtJoinIdiomIsASpuriousEraserReport) {
  // Section 8.3: the I/O statistics are accessed by two children under a
  // common lock and by the parent after join() with no lock at all.
  // Eraser has no join modelling, so the parent's lockset is empty, the
  // candidate set C(v) drains to ∅, and Eraser (spuriously) reports.  The
  // paper's detector sees locksets {S1,c}, {S2,c}, {S1,S2} instead —
  // mutually intersecting — and stays silent (RaceRuntimeTest covers it).
  EraserDetector E;
  auto AccessWith = [&](ThreadId T, std::initializer_list<uint32_t> Locks) {
    for (uint32_t L : Locks)
      E.onMonitorEnter(T, LockId(L), false);
    E.onAccess(T, keyOf(1), WR, SiteId());
    for (uint32_t L : Locks)
      E.onMonitorExit(T, LockId(L), false);
  };
  AccessWith(ThreadId(1), {5});
  AccessWith(ThreadId(2), {5});
  AccessWith(ThreadId(0), {});
  EXPECT_EQ(E.reportedLocations().size(), 1u);
}

TEST(EraserTest, ObjectGranularityMergesFields) {
  EraserDetector E(/*ObjectGranularity=*/true);
  // Per-field locking: field 0 under lock 3, field 1 under lock 4.
  auto Access = [&](ThreadId T, uint32_t Field, uint32_t Lock) {
    E.onMonitorEnter(T, LockId(Lock), false);
    E.onAccess(T, keyOf(1, Field), WR, SiteId());
    E.onMonitorExit(T, LockId(Lock), false);
  };
  Access(ThreadId(1), 0, 3);
  Access(ThreadId(2), 0, 3);
  Access(ThreadId(1), 1, 4);
  Access(ThreadId(2), 1, 4);
  // Merged, the candidate set is {3} ∩ {4} = ∅: a spurious report.
  EXPECT_EQ(E.countDistinctObjects(), 1u);

  EraserDetector Fine(/*ObjectGranularity=*/false);
  Fine.onMonitorEnter(ThreadId(1), LockId(3), false);
  Fine.onAccess(ThreadId(1), keyOf(1, 0), WR, SiteId());
  Fine.onMonitorExit(ThreadId(1), LockId(3), false);
  Fine.onMonitorEnter(ThreadId(2), LockId(3), false);
  Fine.onAccess(ThreadId(2), keyOf(1, 0), WR, SiteId());
  Fine.onMonitorExit(ThreadId(2), LockId(3), false);
  EXPECT_TRUE(Fine.reportedLocations().empty());
}

//===----------------------------------------------------------------------===
// Vector clocks.
//===----------------------------------------------------------------------===

TEST(VectorClockTest, BasicOrderOperations) {
  VectorClock A, B;
  A.set(ThreadId(0), 1);
  EXPECT_FALSE(A.isOrderedBefore(B));
  EXPECT_TRUE(B.isOrderedBefore(A));
  B.joinWith(A);
  EXPECT_TRUE(A.isOrderedBefore(B));
  B.tick(ThreadId(1));
  EXPECT_TRUE(A.isOrderedBefore(B));
  EXPECT_FALSE(B.isOrderedBefore(A));
}

TEST(VectorClockDetectorTest, UnorderedWritesReported) {
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  VC.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(VC.reportedLocations().size(), 1u);
}

TEST(VectorClockDetectorTest, StartAndJoinOrderAccesses) {
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // before start
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // ordered after start
  VC.onThreadExit(ThreadId(1));
  VC.onThreadJoin(ThreadId(0), ThreadId(1));
  VC.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // ordered after join
  EXPECT_TRUE(VC.reportedLocations().empty());
}

TEST(VectorClockDetectorTest, LockHandoffCreatesOrder) {
  // T1's critical section observed before T2's: the release/acquire edge
  // orders the enclosed accesses, so happens-before sees NO race...
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  // T1: lock; x.f = 1 inside; unlock — then ALSO an unlocked access made
  // before releasing would race... keep it simple: the unprotected access
  // is inside the critical section for T1 and after acquisition for T2.
  VC.onMonitorEnter(ThreadId(1), LockId(9), false);
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  VC.onMonitorExit(ThreadId(1), LockId(9), false);
  VC.onMonitorEnter(ThreadId(2), LockId(9), false);
  VC.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  VC.onMonitorExit(ThreadId(2), LockId(9), false);
  EXPECT_TRUE(VC.reportedLocations().empty());
}

TEST(VectorClockDetectorTest, MissesFeasibleRaceTheLocksetApproachReports) {
  // Section 2.2's scenario: two *different* fields touched in the same
  // critical sections plus an access outside.  T11:a.f=50 has no common
  // lock with T21:d.f=10 (foo's `this` vs q), but when the schedule orders
  // T13 before T20, happens-before transitively orders T11 before T21 and
  // the HB detector is silent.
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));

  // T1 (thread 1): synchronized(this=7) { a.f = 50; synchronized(p=9) {} }
  VC.onMonitorEnter(ThreadId(1), LockId(7), false);
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // T11: a.f
  VC.onMonitorEnter(ThreadId(1), LockId(9), false); // T13: p
  VC.onMonitorExit(ThreadId(1), LockId(9), false);
  VC.onMonitorExit(ThreadId(1), LockId(7), false);

  // T2 (thread 2) afterwards: synchronized(q=9) { d.f = 10 }.
  VC.onMonitorEnter(ThreadId(2), LockId(9), false); // T20: q == p
  VC.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // T21: d.f
  VC.onMonitorExit(ThreadId(2), LockId(9), false);

  // Happens-before sees T11 -> (release p) -> (acquire q) -> T21: silent.
  EXPECT_TRUE(VC.reportedLocations().empty());

  // The lockset oracle disagrees: {7} ∩ {9} = ∅ — a feasible race.
  NaiveDetector Oracle({false, false});
  AccessEvent E1{keyOf(1), ThreadId(1), LockSet{LockId(7)}, WR, SiteId()};
  AccessEvent E2{keyOf(1), ThreadId(2), LockSet{LockId(9)}, WR, SiteId()};
  Oracle.addEvent(E1);
  Oracle.addEvent(E2);
  EXPECT_EQ(Oracle.racyLocations().size(), 1u);
}

} // namespace
