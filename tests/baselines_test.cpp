//===- tests/baselines_test.cpp - Baseline detector tests -----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the comparison detectors: the exact O(N²) oracle, Eraser's
/// lockset state machine, and the vector-clock happens-before detector —
/// including the Section 8.3/2.2 behavioural differences the paper
/// documents.
///
//===----------------------------------------------------------------------===//

#include "baselines/EpochDetector.h"
#include "baselines/EraserDetector.h"
#include "baselines/NaiveDetector.h"
#include "baselines/VectorClockDetector.h"
#include "support/ClockStore.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

constexpr AccessKind RD = AccessKind::Read;
constexpr AccessKind WR = AccessKind::Write;

LocationKey keyOf(uint32_t Obj, uint32_t Field = 0) {
  return LocationKey::forField(ObjectId(Obj), FieldId(Field));
}

//===----------------------------------------------------------------------===
// Naive oracle.
//===----------------------------------------------------------------------===

TEST(NaiveDetectorTest, FindsExactRacyLocations) {
  NaiveDetector Oracle({/*UseOwnership=*/false, /*ModelJoin=*/false});
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  Oracle.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // race on 1
  Oracle.onAccess(ThreadId(1), keyOf(2), RD, SiteId());
  Oracle.onAccess(ThreadId(2), keyOf(2), RD, SiteId()); // reads: no race
  EXPECT_EQ(Oracle.racyLocations(), (std::set<LocationKey>{keyOf(1)}));
  EXPECT_EQ(Oracle.memRaceSize(keyOf(1)), 1u);
  EXPECT_EQ(Oracle.memRaceSize(keyOf(2)), 0u);
}

TEST(NaiveDetectorTest, LocksetsRespected) {
  NaiveDetector Oracle({false, false});
  Oracle.onMonitorEnter(ThreadId(1), LockId(9), false);
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  Oracle.onMonitorExit(ThreadId(1), LockId(9), false);
  Oracle.onMonitorEnter(ThreadId(2), LockId(9), false);
  Oracle.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  Oracle.onMonitorExit(ThreadId(2), LockId(9), false);
  EXPECT_TRUE(Oracle.racyLocations().empty());
}

TEST(NaiveDetectorTest, OwnershipFiltersInitialization) {
  NaiveDetector Oracle({/*UseOwnership=*/true, false});
  Oracle.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // owner init
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // handoff
  EXPECT_TRUE(Oracle.racyLocations().empty());
  // A third thread creates a genuine race with the second's access.
  Oracle.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(Oracle.racyLocations().size(), 1u);
}

TEST(NaiveDetectorTest, JoinDummyLocksOrderParentAfterChild) {
  NaiveDetector Oracle({false, /*ModelJoin=*/true});
  Oracle.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  Oracle.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(5));
  Oracle.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  Oracle.onThreadExit(ThreadId(1));
  Oracle.onThreadJoin(ThreadId(0), ThreadId(1));
  Oracle.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  EXPECT_TRUE(Oracle.racyLocations().empty());
}

//===----------------------------------------------------------------------===
// Eraser.
//===----------------------------------------------------------------------===

TEST(EraserTest, StateMachineProgression) {
  EraserDetector E;
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::Virgin);
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::Exclusive);
  E.onAccess(ThreadId(2), keyOf(1), RD, SiteId());
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::Shared);
  E.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(E.stateOf(keyOf(1)), EraserDetector::State::SharedModified);
}

TEST(EraserTest, ConsistentLockNeverReported) {
  EraserDetector E;
  for (uint32_t Round = 0; Round != 4; ++Round) {
    ThreadId T(1 + Round % 2);
    E.onMonitorEnter(T, LockId(9), false);
    E.onAccess(T, keyOf(1), WR, SiteId());
    E.onMonitorExit(T, LockId(9), false);
  }
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EraserTest, EmptyCandidateSetReported) {
  EraserDetector E;
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  E.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // no locks at all
  EXPECT_EQ(E.reportedLocations().size(), 1u);
}

TEST(EraserTest, InitializationGraceInExclusiveState) {
  EraserDetector E;
  // First thread may access lock-free as often as it wants.
  for (int I = 0; I != 5; ++I)
    E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EraserTest, MtrtJoinIdiomIsASpuriousEraserReport) {
  // Section 8.3: the I/O statistics are accessed by two children under a
  // common lock and by the parent after join() with no lock at all.
  // Eraser has no join modelling, so the parent's lockset is empty, the
  // candidate set C(v) drains to ∅, and Eraser (spuriously) reports.  The
  // paper's detector sees locksets {S1,c}, {S2,c}, {S1,S2} instead —
  // mutually intersecting — and stays silent (RaceRuntimeTest covers it).
  EraserDetector E;
  auto AccessWith = [&](ThreadId T, std::initializer_list<uint32_t> Locks) {
    for (uint32_t L : Locks)
      E.onMonitorEnter(T, LockId(L), false);
    E.onAccess(T, keyOf(1), WR, SiteId());
    for (uint32_t L : Locks)
      E.onMonitorExit(T, LockId(L), false);
  };
  AccessWith(ThreadId(1), {5});
  AccessWith(ThreadId(2), {5});
  AccessWith(ThreadId(0), {});
  EXPECT_EQ(E.reportedLocations().size(), 1u);
}

TEST(EraserTest, ObjectGranularityMergesFields) {
  EraserDetector E(/*ObjectGranularity=*/true);
  // Per-field locking: field 0 under lock 3, field 1 under lock 4.
  auto Access = [&](ThreadId T, uint32_t Field, uint32_t Lock) {
    E.onMonitorEnter(T, LockId(Lock), false);
    E.onAccess(T, keyOf(1, Field), WR, SiteId());
    E.onMonitorExit(T, LockId(Lock), false);
  };
  Access(ThreadId(1), 0, 3);
  Access(ThreadId(2), 0, 3);
  Access(ThreadId(1), 1, 4);
  Access(ThreadId(2), 1, 4);
  // Merged, the candidate set is {3} ∩ {4} = ∅: a spurious report.
  EXPECT_EQ(E.countDistinctObjects(), 1u);

  EraserDetector Fine(/*ObjectGranularity=*/false);
  Fine.onMonitorEnter(ThreadId(1), LockId(3), false);
  Fine.onAccess(ThreadId(1), keyOf(1, 0), WR, SiteId());
  Fine.onMonitorExit(ThreadId(1), LockId(3), false);
  Fine.onMonitorEnter(ThreadId(2), LockId(3), false);
  Fine.onAccess(ThreadId(2), keyOf(1, 0), WR, SiteId());
  Fine.onMonitorExit(ThreadId(2), LockId(3), false);
  EXPECT_TRUE(Fine.reportedLocations().empty());
}

//===----------------------------------------------------------------------===
// Vector clocks.
//===----------------------------------------------------------------------===

TEST(VectorClockTest, BasicOrderOperations) {
  VectorClock A, B;
  A.set(ThreadId(0), 1);
  EXPECT_FALSE(A.isOrderedBefore(B));
  EXPECT_TRUE(B.isOrderedBefore(A));
  B.joinWith(A);
  EXPECT_TRUE(A.isOrderedBefore(B));
  B.tick(ThreadId(1));
  EXPECT_TRUE(A.isOrderedBefore(B));
  EXPECT_FALSE(B.isOrderedBefore(A));
}

TEST(VectorClockDetectorTest, UnorderedWritesReported) {
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  VC.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(VC.reportedLocations().size(), 1u);
}

TEST(VectorClockDetectorTest, StartAndJoinOrderAccesses) {
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // before start
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // ordered after start
  VC.onThreadExit(ThreadId(1));
  VC.onThreadJoin(ThreadId(0), ThreadId(1));
  VC.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // ordered after join
  EXPECT_TRUE(VC.reportedLocations().empty());
}

TEST(VectorClockDetectorTest, LockHandoffCreatesOrder) {
  // T1's critical section observed before T2's: the release/acquire edge
  // orders the enclosed accesses, so happens-before sees NO race...
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  // T1: lock; x.f = 1 inside; unlock — then ALSO an unlocked access made
  // before releasing would race... keep it simple: the unprotected access
  // is inside the critical section for T1 and after acquisition for T2.
  VC.onMonitorEnter(ThreadId(1), LockId(9), false);
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  VC.onMonitorExit(ThreadId(1), LockId(9), false);
  VC.onMonitorEnter(ThreadId(2), LockId(9), false);
  VC.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  VC.onMonitorExit(ThreadId(2), LockId(9), false);
  EXPECT_TRUE(VC.reportedLocations().empty());
}

TEST(VectorClockDetectorTest, MissesFeasibleRaceTheLocksetApproachReports) {
  // Section 2.2's scenario: two *different* fields touched in the same
  // critical sections plus an access outside.  T11:a.f=50 has no common
  // lock with T21:d.f=10 (foo's `this` vs q), but when the schedule orders
  // T13 before T20, happens-before transitively orders T11 before T21 and
  // the HB detector is silent.
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));

  // T1 (thread 1): synchronized(this=7) { a.f = 50; synchronized(p=9) {} }
  VC.onMonitorEnter(ThreadId(1), LockId(7), false);
  VC.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // T11: a.f
  VC.onMonitorEnter(ThreadId(1), LockId(9), false); // T13: p
  VC.onMonitorExit(ThreadId(1), LockId(9), false);
  VC.onMonitorExit(ThreadId(1), LockId(7), false);

  // T2 (thread 2) afterwards: synchronized(q=9) { d.f = 10 }.
  VC.onMonitorEnter(ThreadId(2), LockId(9), false); // T20: q == p
  VC.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // T21: d.f
  VC.onMonitorExit(ThreadId(2), LockId(9), false);

  // Happens-before sees T11 -> (release p) -> (acquire q) -> T21: silent.
  EXPECT_TRUE(VC.reportedLocations().empty());

  // The lockset oracle disagrees: {7} ∩ {9} = ∅ — a feasible race.
  NaiveDetector Oracle({false, false});
  AccessEvent E1{keyOf(1), ThreadId(1), LockSet{LockId(7)}, WR, SiteId()};
  AccessEvent E2{keyOf(1), ThreadId(2), LockSet{LockId(9)}, WR, SiteId()};
  Oracle.addEvent(E1);
  Oracle.addEvent(E2);
  EXPECT_EQ(Oracle.racyLocations().size(), 1u);
}

//===----------------------------------------------------------------------===
// Vector-clock edge cases: clocks past 32 bits, single-thread traces,
// thread ids far beyond the initial capacity.
//===----------------------------------------------------------------------===

TEST(VectorClockTest, ClockValuesSurvivePast32Bits) {
  // Components are 64-bit: ticking across the 2^32 boundary must not
  // truncate, and joins/orderings must compare full-width.
  const uint64_t Big = (uint64_t(1) << 32) - 1;
  VectorClock A;
  A.set(ThreadId(0), Big);
  A.tick(ThreadId(0));
  EXPECT_EQ(A.get(ThreadId(0)), uint64_t(1) << 32);

  VectorClock B;
  B.set(ThreadId(0), Big); // 2^32 - 1: a 32-bit compare would see B > A
  EXPECT_TRUE(B.isOrderedBefore(A));
  EXPECT_FALSE(A.isOrderedBefore(B));

  B.joinWith(A);
  EXPECT_EQ(B.get(ThreadId(0)), uint64_t(1) << 32);

  VectorClock C;
  C.set(ThreadId(1), (uint64_t(1) << 32) + 7);
  B.joinWith(C);
  EXPECT_EQ(B.get(ThreadId(0)), uint64_t(1) << 32);
  EXPECT_EQ(B.get(ThreadId(1)), (uint64_t(1) << 32) + 7);
}

TEST(VectorClockDetectorTest, SingleThreadTraceNeverRaces) {
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  for (int Round = 0; Round != 3; ++Round) {
    for (uint32_t Obj = 1; Obj != 5; ++Obj) {
      VC.onAccess(ThreadId(0), keyOf(Obj), RD, SiteId());
      VC.onAccess(ThreadId(0), keyOf(Obj), WR, SiteId());
    }
    VC.onMonitorEnter(ThreadId(0), LockId(9), false);
    VC.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
    VC.onMonitorExit(ThreadId(0), LockId(9), false);
  }
  EXPECT_TRUE(VC.reportedLocations().empty());
}

TEST(VectorClockDetectorTest, ThreadIdsBeyondInitialCapacity) {
  // Sparse, far-apart thread ids must resize every per-thread structure on
  // demand; the races between them are still detected.
  VectorClockDetector VC;
  VC.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  VC.onThreadCreate(ThreadId(500), ThreadId(0), ObjectId(1));
  VC.onThreadCreate(ThreadId(1000), ThreadId(0), ObjectId(2));
  VC.onAccess(ThreadId(500), keyOf(1), WR, SiteId());
  VC.onAccess(ThreadId(1000), keyOf(1), WR, SiteId());
  EXPECT_EQ(VC.reportedLocations().size(), 1u);
  // Ordered via exit+join: no further report on another location.
  VC.onAccess(ThreadId(500), keyOf(2), WR, SiteId());
  VC.onThreadExit(ThreadId(500));
  VC.onThreadJoin(ThreadId(1000), ThreadId(500));
  VC.onAccess(ThreadId(1000), keyOf(2), WR, SiteId());
  EXPECT_EQ(VC.reportedLocations().size(), 1u);
}

//===----------------------------------------------------------------------===
// ClockStore: the pooled vector-clock arena behind the epoch detector.
//===----------------------------------------------------------------------===

TEST(ClockStoreTest, AllocZeroesAndSetGetRoundTrips) {
  ClockStore S(4);
  uint32_t H = S.alloc();
  EXPECT_EQ(S.get(H, 0), 0u);
  EXPECT_EQ(S.get(H, 3), 0u);
  S.set(H, 2, 42);
  EXPECT_EQ(S.get(H, 2), 42u);
  // Reads past the current stride are implicitly zero.
  EXPECT_EQ(S.get(H, 100), 0u);
  EXPECT_EQ(S.freshAllocs(), 1u);
  EXPECT_EQ(S.reusedAllocs(), 0u);
}

TEST(ClockStoreTest, ReleaseRecyclesRowsZeroed) {
  ClockStore S(4);
  uint32_t A = S.alloc();
  S.set(A, 1, 7);
  S.release(A);
  uint32_t B = S.alloc();
  EXPECT_EQ(B, A); // the free list hands the row back...
  EXPECT_EQ(S.get(B, 1), 0u); // ...wiped
  EXPECT_EQ(S.freshAllocs(), 1u);
  EXPECT_EQ(S.reusedAllocs(), 1u);
}

TEST(ClockStoreTest, EnsureSlotsPreservesRowsAcrossGrowth) {
  ClockStore S(2);
  uint32_t A = S.alloc();
  uint32_t B = S.alloc();
  S.set(A, 0, 11);
  S.set(A, 1, 22);
  S.set(B, 1, 33);
  S.ensureSlots(100); // forces a stride-doubling rebuild
  EXPECT_GE(S.slots(), 100u);
  EXPECT_EQ(S.get(A, 0), 11u);
  EXPECT_EQ(S.get(A, 1), 22u);
  EXPECT_EQ(S.get(B, 1), 33u);
  EXPECT_EQ(S.get(A, 99), 0u); // new slots come up zero
  S.set(B, 99, 44); // and are writable after the rebuild
  EXPECT_EQ(S.get(B, 99), 44u);
}

TEST(ClockStoreTest, JoinAndOrderingArePointwise) {
  ClockStore S(8);
  uint32_t A = S.alloc();
  uint32_t B = S.alloc();
  S.set(A, 0, 5);
  S.set(A, 2, 1);
  S.set(B, 0, 3);
  S.set(B, 1, 9);
  EXPECT_FALSE(S.orderedBefore(A, B)); // A[0]=5 > B[0]=3
  EXPECT_FALSE(S.orderedBefore(B, A)); // B[1]=9 > A[1]=0
  S.joinInto(B, A);
  EXPECT_EQ(S.get(B, 0), 5u);
  EXPECT_EQ(S.get(B, 1), 9u);
  EXPECT_EQ(S.get(B, 2), 1u);
  EXPECT_TRUE(S.orderedBefore(A, B));
  uint32_t C = S.alloc();
  S.assign(C, B);
  EXPECT_TRUE(S.orderedBefore(B, C));
  EXPECT_TRUE(S.orderedBefore(C, B));
}

TEST(ClockStoreTest, ClockValuesSurvivePast32Bits) {
  ClockStore S(4);
  uint32_t A = S.alloc();
  uint32_t B = S.alloc();
  S.set(A, 0, (uint64_t(1) << 32) - 1);
  S.set(B, 0, uint64_t(1) << 32);
  EXPECT_TRUE(S.orderedBefore(A, B));
  EXPECT_FALSE(S.orderedBefore(B, A));
  S.joinInto(A, B);
  EXPECT_EQ(S.get(A, 0), uint64_t(1) << 32);
}

//===----------------------------------------------------------------------===
// Epoch detector.
//===----------------------------------------------------------------------===

TEST(EpochDetectorTest, PackUnpackRoundTrips) {
  const uint32_t MaxSlot = (uint32_t(1) << EpochDetector::SlotBits) - 1;
  const uint64_t Clocks[] = {0, 1, (uint64_t(1) << 32) - 1,
                             (uint64_t(1) << 32) + 7,
                             EpochDetector::MaxClock};
  for (uint32_t Slot : {uint32_t(0), uint32_t(1), MaxSlot}) {
    for (uint64_t Clock : Clocks) {
      uint64_t E = EpochDetector::packEpoch(Slot, Clock);
      EXPECT_EQ(EpochDetector::epochSlot(E), Slot);
      EXPECT_EQ(EpochDetector::epochClock(E), Clock);
      EXPECT_FALSE(E & EpochDetector::SharedBit);
    }
  }
}

TEST(EpochDetectorTest, UnorderedWritesReported) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  E.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  EXPECT_EQ(E.reportedLocations(), (std::set<LocationKey>{keyOf(1)}));
  EXPECT_EQ(E.stats().RacesReported, 1u);
}

TEST(EpochDetectorTest, StartAndJoinOrderAccesses) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  E.onThreadExit(ThreadId(1));
  E.onThreadJoin(ThreadId(0), ThreadId(1));
  E.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EpochDetectorTest, LockHandoffCreatesOrder) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  E.onMonitorEnter(ThreadId(1), LockId(9), false);
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  E.onMonitorExit(ThreadId(1), LockId(9), false);
  E.onMonitorEnter(ThreadId(2), LockId(9), false);
  E.onAccess(ThreadId(2), keyOf(1), WR, SiteId());
  E.onMonitorExit(ThreadId(2), LockId(9), false);
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EpochDetectorTest, SameEpochFastPathsCounted) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  for (int I = 0; I != 5; ++I)
    E.onAccess(ThreadId(0), keyOf(1), RD, SiteId());
  for (int I = 0; I != 5; ++I)
    E.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  EpochStats S = E.stats();
  EXPECT_EQ(S.Events, 10u);
  EXPECT_EQ(S.SameEpochReads, 4u);  // first read establishes the epoch
  EXPECT_EQ(S.SameEpochWrites, 4u); // first write establishes the epoch
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EpochDetectorTest, ConcurrentReadsInflateThenOrderedWriteCollapses) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  // Two genuinely concurrent reads: read state inflates to a ClockStore
  // row; reads never race with reads.
  E.onAccess(ThreadId(1), keyOf(1), RD, SiteId());
  E.onAccess(ThreadId(2), keyOf(1), RD, SiteId());
  EXPECT_EQ(E.stats().ReadInflations, 1u);
  EXPECT_TRUE(E.reportedLocations().empty());
  // A write ordered after both (via join) collapses the shared state back
  // to an epoch without reporting.
  E.onThreadExit(ThreadId(1));
  E.onThreadExit(ThreadId(2));
  E.onThreadJoin(ThreadId(0), ThreadId(1));
  E.onThreadJoin(ThreadId(0), ThreadId(2));
  E.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  EpochStats S = E.stats();
  EXPECT_EQ(S.SharedCollapses, 1u);
  EXPECT_GE(S.ClockRowsReused + S.ClockRowsFresh, 1u);
  EXPECT_TRUE(E.reportedLocations().empty());
}

TEST(EpochDetectorTest, WriteConcurrentWithSharedReadsReported) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  E.onThreadCreate(ThreadId(3), ThreadId(0), ObjectId(3));
  E.onAccess(ThreadId(1), keyOf(1), RD, SiteId());
  E.onAccess(ThreadId(2), keyOf(1), RD, SiteId()); // inflates
  E.onAccess(ThreadId(3), keyOf(1), WR, SiteId()); // concurrent with both
  EXPECT_EQ(E.reportedLocations(), (std::set<LocationKey>{keyOf(1)}));
}

TEST(EpochDetectorTest, ReadConcurrentWithWriteReported) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  E.onAccess(ThreadId(2), keyOf(1), RD, SiteId());
  EXPECT_EQ(E.reportedLocations(), (std::set<LocationKey>{keyOf(1)}));
}

TEST(EpochDetectorTest, SingleThreadTraceStaysOnFastPaths) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  for (int Round = 0; Round != 3; ++Round) {
    for (uint32_t Obj = 1; Obj != 5; ++Obj) {
      E.onAccess(ThreadId(0), keyOf(Obj), RD, SiteId());
      E.onAccess(ThreadId(0), keyOf(Obj), WR, SiteId());
    }
    E.onMonitorEnter(ThreadId(0), LockId(9), false);
    E.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
    E.onMonitorExit(ThreadId(0), LockId(9), false);
  }
  EXPECT_TRUE(E.reportedLocations().empty());
  EpochStats S = E.stats();
  EXPECT_EQ(S.ReadInflations, 0u);
  EXPECT_EQ(S.ThreadsSeen, 1u);
}

TEST(EpochDetectorTest, ThreadIdsBeyondInitialCapacity) {
  // Sparse ids map to dense slots in first-appearance order, so arbitrary
  // ThreadId values cost a slot, not an id-sized table.
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadCreate(ThreadId(500), ThreadId(0), ObjectId(1));
  E.onThreadCreate(ThreadId(1000), ThreadId(0), ObjectId(2));
  E.onAccess(ThreadId(500), keyOf(1), WR, SiteId());
  E.onAccess(ThreadId(1000), keyOf(1), WR, SiteId());
  EXPECT_EQ(E.reportedLocations().size(), 1u);
  E.onAccess(ThreadId(500), keyOf(2), WR, SiteId());
  E.onThreadExit(ThreadId(500));
  E.onThreadJoin(ThreadId(1000), ThreadId(500));
  E.onAccess(ThreadId(1000), keyOf(2), WR, SiteId());
  EXPECT_EQ(E.reportedLocations().size(), 1u);
  EXPECT_EQ(E.stats().ThreadsSeen, 3u);
}

TEST(EpochDetectorTest, JoinOfUnseenOrLiveThreadIsANoOp) {
  EpochDetector E;
  E.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  E.onThreadJoin(ThreadId(0), ThreadId(42)); // never seen
  E.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  E.onThreadJoin(ThreadId(0), ThreadId(1)); // seen but never exited
  E.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  E.onAccess(ThreadId(1), keyOf(1), WR, SiteId());
  // The no-op joins must not have manufactured an ordering edge.
  EXPECT_EQ(E.reportedLocations().size(), 1u);
}

//===----------------------------------------------------------------------===
// Epoch vs vector-clock differential: both detectors replay the same hand
// traces and must report identical racy-location sets (the FastTrack
// equivalence the docs/DETECTORS.md argument pins down).
//===----------------------------------------------------------------------===

struct TraceOp {
  enum Kind { Create, Exit, Join, Enter, Leave, Access } K;
  uint32_t A = 0, B = 0;
  AccessKind Acc = AccessKind::Read;
};

void applyTrace(RuntimeHooks &H, const std::vector<TraceOp> &Ops) {
  for (const TraceOp &Op : Ops) {
    switch (Op.K) {
    case TraceOp::Create:
      H.onThreadCreate(ThreadId(Op.A),
                       Op.B == UINT32_MAX ? ThreadId::invalid()
                                          : ThreadId(Op.B),
                       ObjectId(Op.A));
      break;
    case TraceOp::Exit:
      H.onThreadExit(ThreadId(Op.A));
      break;
    case TraceOp::Join:
      H.onThreadJoin(ThreadId(Op.A), ThreadId(Op.B));
      break;
    case TraceOp::Enter:
      H.onMonitorEnter(ThreadId(Op.A), LockId(Op.B), false);
      break;
    case TraceOp::Leave:
      H.onMonitorExit(ThreadId(Op.A), LockId(Op.B), false);
      break;
    case TraceOp::Access:
      H.onAccess(ThreadId(Op.A), keyOf(Op.B), Op.Acc, SiteId());
      break;
    }
  }
}

void expectSameRaceSet(const std::vector<TraceOp> &Ops) {
  VectorClockDetector VC;
  EpochDetector E;
  applyTrace(VC, Ops);
  applyTrace(E, Ops);
  EXPECT_EQ(E.reportedLocations(), VC.reportedLocations());
}

TEST(EpochDifferentialTest, RacyAndOrderedMix) {
  expectSameRaceSet({
      {TraceOp::Create, 0, UINT32_MAX},
      {TraceOp::Create, 1, 0},
      {TraceOp::Create, 2, 0},
      {TraceOp::Access, 1, 1, AccessKind::Write},
      {TraceOp::Access, 2, 1, AccessKind::Write}, // race on 1
      {TraceOp::Enter, 1, 9},
      {TraceOp::Access, 1, 2, AccessKind::Write},
      {TraceOp::Leave, 1, 9},
      {TraceOp::Enter, 2, 9},
      {TraceOp::Access, 2, 2, AccessKind::Write}, // ordered: no race on 2
      {TraceOp::Leave, 2, 9},
      {TraceOp::Access, 1, 3, AccessKind::Read},
      {TraceOp::Access, 2, 3, AccessKind::Read}, // reads never race
      {TraceOp::Access, 2, 3, AccessKind::Write}, // races with 1's read
  });
}

TEST(EpochDifferentialTest, SharedReadsThenWrites) {
  expectSameRaceSet({
      {TraceOp::Create, 0, UINT32_MAX},
      {TraceOp::Create, 1, 0},
      {TraceOp::Create, 2, 0},
      {TraceOp::Create, 3, 0},
      {TraceOp::Access, 1, 1, AccessKind::Read},
      {TraceOp::Access, 2, 1, AccessKind::Read},
      {TraceOp::Access, 3, 1, AccessKind::Read}, // three-way shared
      {TraceOp::Exit, 1, 0},
      {TraceOp::Exit, 2, 0},
      {TraceOp::Join, 0, 1},
      {TraceOp::Join, 0, 2},
      {TraceOp::Access, 0, 1, AccessKind::Write}, // races with 3's read only
      {TraceOp::Access, 0, 2, AccessKind::Write},
      {TraceOp::Exit, 3, 0},
      {TraceOp::Join, 0, 3},
      {TraceOp::Access, 0, 2, AccessKind::Write}, // same thread: no race
  });
}

TEST(EpochDifferentialTest, LockChainsAndJoinOrdering) {
  expectSameRaceSet({
      {TraceOp::Create, 0, UINT32_MAX},
      {TraceOp::Access, 0, 1, AccessKind::Write}, // init before start
      {TraceOp::Create, 1, 0},
      {TraceOp::Create, 2, 0},
      {TraceOp::Access, 1, 1, AccessKind::Read}, // ordered after init
      {TraceOp::Enter, 1, 5},
      {TraceOp::Access, 1, 2, AccessKind::Write},
      {TraceOp::Leave, 1, 5},
      {TraceOp::Enter, 2, 5},
      {TraceOp::Enter, 2, 6},
      {TraceOp::Access, 2, 2, AccessKind::Read}, // ordered via lock 5
      {TraceOp::Leave, 2, 6},
      {TraceOp::Leave, 2, 5},
      {TraceOp::Enter, 1, 6},
      {TraceOp::Access, 1, 3, AccessKind::Write}, // ordered via 5 then 6
      {TraceOp::Leave, 1, 6},
      {TraceOp::Access, 2, 3, AccessKind::Write}, // concurrent: race on 3
      {TraceOp::Exit, 1, 0},
      {TraceOp::Exit, 2, 0},
      {TraceOp::Join, 0, 1},
      {TraceOp::Join, 0, 2},
      {TraceOp::Access, 0, 2, AccessKind::Write}, // after both: no race
      {TraceOp::Access, 0, 3, AccessKind::Read}, // location 3 already racy
  });
}

TEST(EpochDifferentialTest, WriteAfterSharedCollapseStillCompared) {
  expectSameRaceSet({
      {TraceOp::Create, 0, UINT32_MAX},
      {TraceOp::Create, 1, 0},
      {TraceOp::Create, 2, 0},
      {TraceOp::Create, 3, 0},
      {TraceOp::Access, 1, 1, AccessKind::Read},
      {TraceOp::Access, 2, 1, AccessKind::Read}, // inflate
      {TraceOp::Exit, 1, 0},
      {TraceOp::Exit, 2, 0},
      {TraceOp::Join, 3, 1},
      {TraceOp::Join, 3, 2},
      {TraceOp::Access, 3, 1, AccessKind::Write}, // ordered: collapse
      {TraceOp::Access, 0, 1, AccessKind::Write}, // concurrent with 3: race
  });
}

} // namespace
