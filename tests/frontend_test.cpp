//===- tests/frontend_test.cpp - MiniJ frontend tests ---------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the MiniJ surface language: lexing, parsing (including error
/// recovery), the type checks in lowering, and end-to-end compile+run
/// semantics, culminating in race detection on a MiniJ source program.
///
//===----------------------------------------------------------------------===//

#include "frontend/Frontend.h"
#include "frontend/Lexer.h"
#include "herd/Pipeline.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

std::vector<int64_t> compileAndRun(std::string_view Source,
                                   uint64_t Seed = 1) {
  CompileResult R = compileMiniJ(Source);
  EXPECT_TRUE(R.Ok) << (R.Diags.empty() ? "?" : R.Diags[0].str());
  if (!R.Ok)
    return {};
  InterpOptions Opts;
  Opts.Seed = Seed;
  Interpreter Interp(R.P, nullptr, Opts);
  InterpResult Run = Interp.run();
  EXPECT_TRUE(Run.Ok) << Run.Error;
  return Run.Output;
}

std::string firstErrorOf(std::string_view Source) {
  CompileResult R = compileMiniJ(Source);
  EXPECT_FALSE(R.Ok);
  return R.Diags.empty() ? std::string() : R.Diags[0].Message;
}

//===----------------------------------------------------------------------===
// Lexer.
//===----------------------------------------------------------------------===

TEST(LexerTest, TokenStream) {
  auto Tokens = Lexer::tokenizeAll("class Foo { var x; } // trailing");
  ASSERT_EQ(Tokens.size(), 8u); // class Foo { var x ; } EOF
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwClass);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[1].Text, "Foo");
  EXPECT_EQ(Tokens[7].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, OperatorsAndLiterals) {
  auto Tokens = Lexer::tokenizeAll("a == 42 && b <= 7 || !c");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::EqEq);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Integer);
  EXPECT_EQ(Tokens[2].IntValue, 42);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::AmpAmp);
  EXPECT_EQ(Tokens[5].Kind, TokenKind::LessEq);
  EXPECT_EQ(Tokens[7].Kind, TokenKind::PipePipe);
  EXPECT_EQ(Tokens[8].Kind, TokenKind::Bang);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto Tokens = Lexer::tokenizeAll("a\n  b");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[1].Line, 2u);
  EXPECT_EQ(Tokens[1].Column, 3u);
}

TEST(LexerTest, InvalidCharacterBecomesErrorToken) {
  auto Tokens = Lexer::tokenizeAll("a @ b");
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Error);
}

//===----------------------------------------------------------------------===
// End-to-end compile + run.
//===----------------------------------------------------------------------===

TEST(FrontendTest, HelloArithmetic) {
  auto Out = compileAndRun(R"(
    def main() {
      var x = 6;
      var y = 7;
      print x * y;
      print (x + y) % 5;
      print -x;
      print !0;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{42, 3, -6, 1}));
}

TEST(FrontendTest, ElseIfChains) {
  auto Out = compileAndRun(R"(
    def main() {
      var i = 0;
      while (i < 5) {
        if (i == 0) { print 100; }
        else if (i == 1) { print 200; }
        else if (i == 2) { print 300; }
        else { print i; }
        i = i + 1;
      }
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{100, 200, 300, 3, 4}));
}

TEST(FrontendTest, ControlFlow) {
  auto Out = compileAndRun(R"(
    def main() {
      var i = 0;
      var sum = 0;
      while (i < 10) {
        if (i % 2 == 0) { sum = sum + i; } else { sum = sum - 1; }
        i = i + 1;
      }
      print sum;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{15})); // 0+2+4+6+8 - 5
}

TEST(FrontendTest, ClassesFieldsAndMethods) {
  auto Out = compileAndRun(R"(
    class Counter {
      var count: int;
      def bump(by: int): int {
        count = count + by;
        return count;
      }
    }
    def main() {
      var c: Counter = new Counter();
      c.bump(5);
      c.bump(7);
      print c.count;
      print c.bump(0);
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{12, 12}));
}

TEST(FrontendTest, StaticFieldsAndMethods) {
  auto Out = compileAndRun(R"(
    class G {
      static var total: int;
      static def add(n: int) {
        G.total = G.total + n;
      }
    }
    def main() {
      G.add(3);
      G.add(4);
      print G.total;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{7}));
}

TEST(FrontendTest, ArraysAndLength) {
  auto Out = compileAndRun(R"(
    def main() {
      var a: int[] = new int[5];
      var i = 0;
      while (i < a.length) {
        a[i] = i * i;
        i = i + 1;
      }
      print a[3];
      print a.length;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{9, 5}));
}

TEST(FrontendTest, ObjectArraysAndNull) {
  auto Out = compileAndRun(R"(
    class Node { var value: int; var next: Node; }
    def main() {
      var nodes: Node[] = new Node[3];
      var head: Node = null;
      var i = 0;
      while (i < 3) {
        var n: Node = new Node();
        n.value = i + 1;
        n.next = head;
        head = n;
        nodes[i] = n;
        i = i + 1;
      }
      var sum = 0;
      var cur: Node = head;
      while (cur != null) {
        sum = sum + cur.value;
        cur = cur.next;
      }
      print sum;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{6}));
}

TEST(FrontendTest, ImplicitThisFieldAccess) {
  auto Out = compileAndRun(R"(
    class Acc {
      var total: int;
      def add(n: int) { total = total + n; }
      def get(): int { return total; }
    }
    def main() {
      var a: Acc = new Acc();
      a.add(2);
      a.add(3);
      print a.get();
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{5}));
}

TEST(FrontendTest, ThreadsAndMonitors) {
  auto Out = compileAndRun(R"(
    class Shared { var count: int; }
    class Worker {
      var target: Shared;
      def run() {
        var i = 0;
        while (i < 40) {
          synchronized (target) {
            target.count = target.count + 1;
          }
          i = i + 1;
        }
      }
    }
    def main() {
      var s: Shared = new Shared();
      var w1: Worker = new Worker();
      var w2: Worker = new Worker();
      w1.target = s;
      w2.target = s;
      start w1;
      start w2;
      join w1;
      join w2;
      print s.count;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{80}));
}

TEST(FrontendTest, SynchronizedMethodsWork) {
  auto Out = compileAndRun(R"(
    class Box {
      var v: int;
      synchronized def bump() { v = v + 1; }
    }
    def main() {
      var b: Box = new Box();
      b.bump();
      b.bump();
      print b.v;
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{2}));
}

TEST(FrontendTest, RaceDetectedInMiniJSource) {
  // The canonical buggy counter, written in MiniJ, through the whole
  // pipeline: compile -> static analysis -> instrument -> run -> report.
  CompileResult R = compileMiniJ(R"(
    class Shared { var count: int; }
    class Worker {
      var target: Shared;
      def run() {
        var i = 0;
        while (i < 30) {
          target.count = target.count + 1;   // no lock!
          i = i + 1;
        }
      }
    }
    def main() {
      var s: Shared = new Shared();
      var w1: Worker = new Worker();
      var w2: Worker = new Worker();
      w1.target = s;
      w2.target = s;
      start w1;
      start w2;
      join w1;
      join w2;
      print s.count;
    }
  )");
  ASSERT_TRUE(R.Ok) << (R.Diags.empty() ? "?" : R.Diags[0].str());
  PipelineResult Res = runPipeline(R.P, ToolConfig::noPeeling());
  ASSERT_TRUE(Res.Run.Ok) << Res.Run.Error;
  EXPECT_EQ(Res.Reports.countDistinctLocations(), 1u);
  // The report carries the source line of the racing statement.
  ASSERT_FALSE(Res.FormattedRaces.empty());
  EXPECT_NE(Res.FormattedRaces[0].find("L8"), std::string::npos)
      << Res.FormattedRaces[0];
}

TEST(FrontendTest, DeterministicOutputMatchesBuilderSemantics) {
  for (uint64_t Seed : {1u, 5u, 9u}) {
    auto A = compileAndRun("def main() { print 1 + 2 * 3; }", Seed);
    EXPECT_EQ(A, (std::vector<int64_t>{7}));
  }
}

TEST(FrontendTest, NullSemantics) {
  // null is MiniJ's zero value: unset fields/array slots compare equal to
  // it, and assigning null clears a reference.
  auto Out = compileAndRun(R"(
    class Node { var next: Node; }
    def main() {
      var nodes: Node[] = new Node[2];
      print nodes[0] == null;      // unset slot: 1
      var n: Node = new Node();
      print n == null;             // 0
      print n.next == null;        // unset field: 1
      nodes[0] = n;
      print nodes[0] == null;      // 0
      nodes[0] = null;
      print nodes[0] == null;      // 1
    }
  )");
  EXPECT_EQ(Out, (std::vector<int64_t>{1, 0, 1, 0, 1}));
}

TEST(FrontendTest, DereferencingNullHaltsTheProgram) {
  CompileResult R = compileMiniJ(R"(
    class Node { var v: int; }
    def main() {
      var n: Node = null;
      print n.v;
    }
  )");
  ASSERT_TRUE(R.Ok);
  Interpreter Interp(R.P, nullptr, InterpOptions{});
  InterpResult Run = Interp.run();
  EXPECT_FALSE(Run.Ok);
}

//===----------------------------------------------------------------------===
// Diagnostics.
//===----------------------------------------------------------------------===

TEST(FrontendDiagTest, MissingSemicolon) {
  std::string E = firstErrorOf("def main() { print 1 }");
  EXPECT_NE(E.find("';'"), std::string::npos);
}

TEST(FrontendDiagTest, UnknownVariable) {
  std::string E = firstErrorOf("def main() { print nope; }");
  EXPECT_NE(E.find("unknown name"), std::string::npos);
}

TEST(FrontendDiagTest, UnknownClassInType) {
  std::string E = firstErrorOf("def main() { var x: Nope = null; }");
  EXPECT_NE(E.find("unknown class"), std::string::npos);
}

TEST(FrontendDiagTest, CallOnInt) {
  std::string E = firstErrorOf("def main() { var x = 1; x.foo(); }");
  EXPECT_NE(E.find("non-object"), std::string::npos);
}

TEST(FrontendDiagTest, ArityMismatch) {
  std::string E = firstErrorOf(R"(
    class A { def f(x: int) { } }
    def main() { var a: A = new A(); a.f(1, 2); }
  )");
  EXPECT_NE(E.find("argument"), std::string::npos);
}

TEST(FrontendDiagTest, TypeMismatchOnAssign) {
  std::string E = firstErrorOf(R"(
    class A { }
    def main() { var x: int = 0; var a: A = new A(); x = a; }
  )");
  EXPECT_NE(E.find("cannot assign"), std::string::npos);
}

TEST(FrontendDiagTest, ReturnInsideSynchronizedRejected) {
  std::string E = firstErrorOf(R"(
    class A {
      def f(): int {
        synchronized (this) { return 1; }
      }
    }
    def main() { var a: A = new A(); print a.f(); }
  )");
  EXPECT_NE(E.find("synchronized"), std::string::npos);
}

TEST(FrontendDiagTest, UnreachableCodeRejected) {
  std::string E = firstErrorOf(R"(
    def main() {
      return;
      print 1;
    }
  )");
  EXPECT_NE(E.find("unreachable"), std::string::npos);
}

TEST(FrontendDiagTest, TopLevelMustBeMain) {
  std::string E = firstErrorOf("def helper() { }");
  EXPECT_NE(E.find("main"), std::string::npos);
}

TEST(FrontendDiagTest, StartOnNonThreadClass) {
  std::string E = firstErrorOf(R"(
    class NotAThread { }
    def main() { var x: NotAThread = new NotAThread(); start x; }
  )");
  EXPECT_NE(E.find("run()"), std::string::npos);
}

TEST(FrontendDiagTest, DuplicateClassRejected) {
  std::string E = firstErrorOf("class A { } class A { } def main() { }");
  EXPECT_NE(E.find("duplicate class"), std::string::npos);
}

TEST(FrontendDiagTest, InstanceFieldFromStaticMethodRejected) {
  std::string E = firstErrorOf(R"(
    class A {
      var x: int;
      static def f() { x = 1; }
    }
    def main() { A.f(); }
  )");
  EXPECT_NE(E.find("static"), std::string::npos);
}

TEST(FrontendDiagTest, ErrorsCarryLineNumbers) {
  CompileResult R = compileMiniJ("def main() {\n  print nope;\n}");
  ASSERT_FALSE(R.Ok);
  ASSERT_FALSE(R.Diags.empty());
  EXPECT_EQ(R.Diags[0].Line, 2u);
}

} // namespace
