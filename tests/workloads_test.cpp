//===- tests/workloads_test.cpp - Benchmark replica validation ------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the five Table 1 replicas: they verify, terminate, behave
/// deterministically, and reproduce the Table 3 accuracy structure (Full /
/// FieldsMerged / NoOwnership) plus the Section 8.3 baseline differences.
///
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"
#include "herd/Pipeline.h"
#include "ir/Verifier.h"
#include "workloads/Workloads.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

class WorkloadTest : public ::testing::TestWithParam<int> {
protected:
  Workload load() const {
    switch (GetParam()) {
    case 0:
      return buildMtrt();
    case 1:
      return buildTsp();
    case 2:
      return buildSor2();
    case 3:
      return buildElevator();
    default:
      return buildHedc();
    }
  }
};

TEST_P(WorkloadTest, VerifiesAndTerminates) {
  Workload W = load();
  auto Problems = verifyProgram(W.P);
  ASSERT_TRUE(Problems.empty()) << W.Name << ": " << Problems[0];
  PipelineResult R = runPipeline(W.P, ToolConfig::base());
  ASSERT_TRUE(R.Run.Ok) << W.Name << ": " << R.Run.Error;
  EXPECT_EQ(R.Run.ThreadsCreated, W.DynamicThreads) << W.Name;
}

TEST_P(WorkloadTest, DeterministicUnderFixedSeed) {
  Workload W = load();
  ToolConfig Config = ToolConfig::full();
  Config.Seed = 17;
  PipelineResult A = runPipeline(W.P, Config);
  PipelineResult B = runPipeline(W.P, Config);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok) << W.Name;
  EXPECT_EQ(A.Run.InstructionsExecuted, B.Run.InstructionsExecuted);
  EXPECT_EQ(A.Reports.reportedLocations(), B.Reports.reportedLocations());
}

TEST_P(WorkloadTest, FullReportsExpectedObjects) {
  Workload W = load();
  PipelineResult R = runPipeline(W.P, ToolConfig::full());
  ASSERT_TRUE(R.Run.Ok) << W.Name << ": " << R.Run.Error;
  EXPECT_EQ(R.Reports.countDistinctObjects(), W.ExpectedRacyObjectsFull)
      << W.Name;
}

TEST_P(WorkloadTest, FullReportCountIsScheduleIndependent) {
  // The Table 3 "Full" column must not be a lucky schedule: the engineered
  // races are reported (and nothing else) for every seed.
  Workload W = load();
  for (uint64_t Seed : {2u, 5u, 8u}) {
    ToolConfig Config = ToolConfig::full();
    Config.Seed = Seed;
    PipelineResult R = runPipeline(W.P, Config);
    ASSERT_TRUE(R.Run.Ok) << W.Name << " seed " << Seed;
    EXPECT_EQ(R.Reports.countDistinctObjects(), W.ExpectedRacyObjectsFull)
        << W.Name << " seed " << Seed;
  }
}

TEST_P(WorkloadTest, Table3OrderingHolds) {
  // Table 3: Full <= FieldsMerged (per object) and Full <= NoOwnership;
  // NoOwnership floods everywhere except where nothing is shared.
  Workload W = load();
  PipelineResult Full = runPipeline(W.P, ToolConfig::full());
  PipelineResult Merged = runPipeline(W.P, ToolConfig::fieldsMerged());
  PipelineResult NoOwn = runPipeline(W.P, ToolConfig::noOwnership());
  ASSERT_TRUE(Full.Run.Ok && Merged.Run.Ok && NoOwn.Run.Ok) << W.Name;
  EXPECT_LE(Full.Reports.countDistinctObjects(),
            Merged.Reports.countDistinctObjects())
      << W.Name;
  EXPECT_LT(Full.Reports.countDistinctObjects(),
            NoOwn.Reports.countDistinctObjects())
      << W.Name;
}

std::string workloadName(const ::testing::TestParamInfo<int> &Info) {
  static const char *const Names[] = {"mtrt", "tsp", "sor2", "elevator",
                                      "hedc"};
  return Names[Info.param];
}

INSTANTIATE_TEST_SUITE_P(AllFive, WorkloadTest,
                         ::testing::Values(0, 1, 2, 3, 4), workloadName);

TEST(WorkloadAccuracyTest, MergedFieldsAddSpuriousObjectsOnTspAndHedc) {
  // Table 3: tsp 5 -> 20 and hedc 5 -> 10 under FieldsMerged; the replica
  // must at least move in that direction.
  for (Workload W : {buildTsp(), buildHedc()}) {
    PipelineResult Full = runPipeline(W.P, ToolConfig::full());
    PipelineResult Merged = runPipeline(W.P, ToolConfig::fieldsMerged());
    ASSERT_TRUE(Full.Run.Ok && Merged.Run.Ok);
    EXPECT_GT(Merged.Reports.countDistinctObjects(),
              Full.Reports.countDistinctObjects())
        << W.Name;
  }
}

TEST(WorkloadAccuracyTest, ElevatorSilentOnlyWithOwnership) {
  Workload W = buildElevator();
  PipelineResult Full = runPipeline(W.P, ToolConfig::full());
  PipelineResult NoOwn = runPipeline(W.P, ToolConfig::noOwnership());
  ASSERT_TRUE(Full.Run.Ok && NoOwn.Run.Ok);
  EXPECT_EQ(Full.Reports.countDistinctObjects(), 0u);
  EXPECT_GE(NoOwn.Reports.countDistinctObjects(), 4u);
}

TEST(WorkloadAccuracyTest, EraserReportsASuperset) {
  // Section 9: "the race definitions for object race detection and Eraser
  // imply they always report a superset of the races we report."  Run the
  // full event stream through Eraser and compare per-object reports.
  for (Workload W : buildAllWorkloads()) {
    EraserDetector Eraser;
    InterpOptions Opts;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(W.P, &Eraser, Opts);
    InterpResult RR = Interp.run();
    ASSERT_TRUE(RR.Ok) << W.Name << ": " << RR.Error;

    PipelineResult Ours = runPipeline(W.P, ToolConfig::full());
    ASSERT_TRUE(Ours.Run.Ok);

    std::set<ObjectId> EraserObjects;
    for (LocationKey Loc : Eraser.reportedLocations())
      EraserObjects.insert(Loc.object());
    std::set<ObjectId> OurObjects;
    for (const RaceRecord &Rec : Ours.Reports.records())
      OurObjects.insert(Rec.Location.object());
    for (ObjectId Obj : OurObjects)
      EXPECT_TRUE(EraserObjects.count(Obj))
          << W.Name << ": Eraser missed object " << Obj.index();
    EXPECT_GE(EraserObjects.size(), OurObjects.size()) << W.Name;
  }
}

TEST(WorkloadAccuracyTest, MtrtEraserReportsTheJoinIdiomWeDoNot) {
  Workload W = buildMtrt();
  EraserDetector Eraser;
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(W.P, &Eraser, Opts);
  ASSERT_TRUE(Interp.run().Ok);
  PipelineResult Ours = runPipeline(W.P, ToolConfig::full());
  // Eraser reports strictly more objects on mtrt: the statistics object
  // accessed under the common lock by the children and lock-free by the
  // parent after join.
  std::set<ObjectId> EraserObjects;
  for (LocationKey Loc : Eraser.reportedLocations())
    EraserObjects.insert(Loc.object());
  EXPECT_GT(EraserObjects.size(), Ours.Reports.countDistinctObjects());
}

TEST(WorkloadStatsTest, StaticAnalysisPrunesMtrtHeavily) {
  // The reason mtrt "runs out of memory" without static analysis: most of
  // its accesses are statically race-free (thread-local scratch).
  Workload W = buildMtrt();
  PipelineResult Full = runPipeline(W.P, ToolConfig::full());
  PipelineResult NoStatic = runPipeline(W.P, ToolConfig::noStatic());
  ASSERT_TRUE(Full.Run.Ok && NoStatic.Run.Ok);
  EXPECT_LT(Full.Instr.TracesInserted, NoStatic.Instr.TracesInserted);
  // The decisive effect is dynamic: the scratch accesses run in a loop.
  // Count emitted events (delivered + L0-filtered) so the comparison
  // measures instrumentation, not the hook filter's hit rate.
  EXPECT_LT((Full.Stats.EventsSeen + Full.Stats.Hook.FilterHits) * 3,
            NoStatic.Stats.EventsSeen + NoStatic.Stats.Hook.FilterHits);
}

TEST(WorkloadStatsTest, TspFloodsTheDetectorWithoutTheCache) {
  Workload W = buildTsp();
  PipelineResult Full = runPipeline(W.P, ToolConfig::full());
  PipelineResult NoCache = runPipeline(W.P, ToolConfig::noCache());
  ASSERT_TRUE(Full.Run.Ok && NoCache.Run.Ok);
  // With the cache (and the L0 hook filter that borrows its invariant),
  // the detector sees a small fraction of the events.
  EXPECT_GT(Full.Stats.Hook.FilterHits + Full.Stats.CacheHits,
            Full.Stats.Detector.EventsIn * 5);
  EXPECT_GT(NoCache.Stats.Detector.EventsIn,
            Full.Stats.Detector.EventsIn * 5);
}

TEST(WorkloadStatsTest, Sor2LosesItsLoopTracesToPeelingAndDominators) {
  Workload W = buildSor2();
  PipelineResult Full = runPipeline(W.P, ToolConfig::full());
  PipelineResult NoDom = runPipeline(W.P, ToolConfig::noDominators());
  ASSERT_TRUE(Full.Run.Ok && NoDom.Run.Ok);
  // The hoisted-subscript inner loop's traces are removed in Full, so the
  // instrumented run emits far fewer events than NoDominators.  Count
  // emitted events (delivered + L0-filtered): the filter soaks up the
  // redundant loop accesses, so EventsSeen alone no longer measures
  // instrumentation density.
  EXPECT_LT((Full.Stats.EventsSeen + Full.Stats.Hook.FilterHits) * 4,
            NoDom.Stats.EventsSeen + NoDom.Stats.Hook.FilterHits);
}

} // namespace
