//===- tests/instr_test.cpp - Instrumentation phase tests -----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for Section 6: trace insertion, the static weaker-than
/// elimination (Definition 3/4: Exec, outer(), value numbering, kill at
/// calls and thread operations), and loop peeling (Section 6.3).
///
//===----------------------------------------------------------------------===//

#include "instr/Instrumenter.h"
#include "instr/Superinstr.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace herd;
using namespace herd::testprogs;

namespace {

size_t countTraces(const Program &P) {
  size_t Count = 0;
  for (size_t MI = 0; MI != P.numMethods(); ++MI)
    for (const BasicBlock &Block : P.method(MethodId{uint32_t(MI)}).Blocks)
      for (const Instr &I : Block.Instrs)
        if (I.Op == Opcode::Trace)
          ++Count;
  return Count;
}

/// Instruments every access (NoStatic mode) with configurable
/// optimizations.
InstrumenterStats instrumentAll(Program &P, bool WeakerThan, bool Peeling) {
  InstrumenterOptions Opts;
  Opts.UseStaticRaceSet = false;
  Opts.StaticWeakerThan = WeakerThan;
  Opts.LoopPeeling = Peeling;
  return instrumentProgram(P, Opts, nullptr);
}

/// Counts access events an instrumented program emits when run.
uint64_t runAndCountEvents(const Program &P, uint64_t Seed = 1) {
  struct Counter : RuntimeHooks {
    uint64_t Events = 0;
    void onAccess(ThreadId, LocationKey, AccessKind, SiteId) override {
      ++Events;
    }
  } Hooks;
  InterpOptions Opts;
  Opts.Seed = Seed;
  Interpreter Interp(P, &Hooks, Opts);
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return Hooks.Events;
}

std::vector<int64_t> runForOutput(const Program &P, uint64_t Seed = 1) {
  Interpreter Interp(P, nullptr, InterpOptions{Seed});
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return R.Output;
}

TEST(TraceInsertionTest, EveryAccessGetsATrace) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  FieldId S = B.makeStaticField(Box, "s");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId V = B.emitConst(1);
  B.emitPutField(Obj, F, V);        // trace 1 (write)
  B.emitPrint(B.emitGetStatic(S));  // trace 2 (read)
  RegId Arr = B.emitNewArray(V);
  RegId Zero = B.emitConst(0);
  B.emitAStore(Arr, Zero, V);       // trace 3 (write)
  B.emitReturn();

  InstrumenterStats Stats = instrumentAll(P, /*WeakerThan=*/false, false);
  EXPECT_EQ(Stats.TracesInserted, 3u);
  EXPECT_EQ(countTraces(P), 3u);
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(TraceInsertionTest, TraceMirrorsAccessShape) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  B.site("W1");
  B.emitPutField(Obj, F, B.emitConst(1));
  B.emitReturn();
  instrumentAll(P, false, false);

  const Instr *Trace = nullptr;
  const Instr *Access = nullptr;
  for (const BasicBlock &Block : P.method(P.MainMethod).Blocks)
    for (const Instr &I : Block.Instrs) {
      if (I.Op == Opcode::Trace)
        Trace = &I;
      if (I.Op == Opcode::PutField)
        Access = &I;
    }
  ASSERT_NE(Trace, nullptr);
  ASSERT_NE(Access, nullptr);
  EXPECT_EQ(Trace->TraceWhat, TraceWhatKind::Field);
  EXPECT_EQ(Trace->A, Access->A);
  EXPECT_EQ(Trace->Field, Access->Field);
  EXPECT_EQ(Trace->Access, AccessKind::Write);
  EXPECT_EQ(Trace->Site, Access->Site);
}

TEST(RedundancyElimTest, RepeatedAccessCollapsesToOneTrace) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId V = B.emitConst(1);
  B.emitPutField(Obj, F, V);
  B.emitPutField(Obj, F, V); // redundant trace
  B.emitPrint(B.emitGetField(Obj, F)); // read covered by the write
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesInserted, 3u);
  EXPECT_EQ(Stats.TracesRemoved, 2u);
  EXPECT_EQ(countTraces(P), 1u);
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(RedundancyElimTest, ReadDoesNotCoverWrite) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  B.emitPrint(B.emitGetField(Obj, F)); // read first
  B.emitPutField(Obj, F, B.emitConst(1)); // write must stay traced
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 0u);
  EXPECT_EQ(countTraces(P), 2u);
}

TEST(RedundancyElimTest, CallKillsAvailability) {
  // Definition 4: a method invocation between S_i and S_j blocks the
  // elimination (the callee may start threads / change ordering).
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  MethodId Noop = B.startMethod(Box, "noop", 1);
  B.emitReturn();
  B.startMain();
  RegId Obj = B.emitNew(Box);
  B.emitPutField(Obj, F, B.emitConst(1));
  B.emitCallVoid(Noop, {Obj});
  B.emitPutField(Obj, F, B.emitConst(2)); // not redundant: call between
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 0u);
}

TEST(RedundancyElimTest, ThreadStartKillsAvailability) {
  // Definition 3: no start() may separate S_i and S_j.
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  ClassId Worker = B.makeClass("Worker");
  B.startMethod(Worker, "run", 1);
  B.emitReturn();
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId W = B.emitNew(Worker);
  B.emitPutField(Obj, F, B.emitConst(1));
  B.emitThreadStart(W);
  B.emitPutField(Obj, F, B.emitConst(2));
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 0u);
}

TEST(RedundancyElimTest, BaseRedefinitionKillsAvailability) {
  // Value numbering: after the base register is redefined it names a
  // different object; the second trace observes a different location.
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId N = B.emitConst(2);
  RegId V = B.emitConst(9);
  // Two objects accessed through the same register via a loop-free trick:
  // write obj1.f, overwrite the register with obj2, write obj2.f.
  RegId Obj = B.emitNew(Box);
  B.emitPutField(Obj, F, V);
  Instr Redefine;
  Redefine.Op = Opcode::New;
  Redefine.Dst = Obj;
  Redefine.Class = Box;
  Redefine.AllocSite = P.addAllocSite(Box, P.MainMethod, false);
  P.method(P.MainMethod).Blocks[0].Instrs.push_back(Redefine);
  B.emitPutField(Obj, F, V); // same register, different object!
  B.emitPrint(N);
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 0u);
  EXPECT_EQ(countTraces(P), 2u);
}

TEST(RedundancyElimTest, OuterNestingAllowsElimination) {
  // S_i outside a monitor region covers S_j inside it: S_j's lockset is a
  // superset (the outer() condition of Section 6.1).
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId V = B.emitConst(1);
  B.emitPutField(Obj, F, V); // S_i: no locks
  B.sync(Obj, [&] {
    B.emitPutField(Obj, F, V); // S_j: deeper nesting — removable
  });
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 1u);
}

TEST(RedundancyElimTest, InnerAccessDoesNotCoverOuter) {
  // The reverse direction is NOT redundant: after monitorexit the earlier
  // (locked) event no longer implies the unlocked one.
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId V = B.emitConst(1);
  B.sync(Obj, [&] { B.emitPutField(Obj, F, V); });
  B.emitPutField(Obj, F, V); // weaker lockset: must stay traced
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 0u);
}

TEST(RedundancyElimTest, BranchesRequireAllPathsCoverage) {
  // The trace after the join is redundant only if both arms produced a
  // covering event.
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId V = B.emitConst(1);
  RegId Cond = B.emitConst(1);
  B.ifThenElse(
      Cond, [&] { B.emitPutField(Obj, F, V); },
      [&] { B.emitPrint(V); }); // else arm has no access
  B.emitPutField(Obj, F, V);    // NOT redundant (else path uncovered)
  B.emitReturn();
  InstrumenterStats Stats = instrumentAll(P, true, false);
  EXPECT_EQ(Stats.TracesRemoved, 0u);

  // Now with both arms covering, the final trace is removable.
  Program P2;
  IRBuilder B2(P2);
  ClassId Box2 = B2.makeClass("Box");
  FieldId F2 = B2.makeField(Box2, "f");
  B2.startMain();
  RegId Obj2 = B2.emitNew(Box2);
  RegId V2 = B2.emitConst(1);
  RegId Cond2 = B2.emitConst(1);
  B2.ifThenElse(
      Cond2, [&] { B2.emitPutField(Obj2, F2, V2); },
      [&] { B2.emitPutField(Obj2, F2, V2); });
  B2.emitPutField(Obj2, F2, V2); // redundant on every path
  B2.emitReturn();
  InstrumenterStats Stats2 = instrumentAll(P2, true, false);
  EXPECT_EQ(Stats2.TracesRemoved, 1u);
}

TEST(LoopPeelingTest, PeelsTraceLoopAndElimRemovesBodyTrace) {
  Program P = buildFig3Loop(10);
  std::vector<int64_t> Expected = runForOutput(P);

  InstrumenterStats Stats = instrumentAll(P, /*WeakerThan=*/true,
                                          /*Peeling=*/true);
  EXPECT_TRUE(verifyProgram(P).empty());
  EXPECT_GE(Stats.LoopsPeeled, 1u);
  // The in-loop trace is removed; the peeled first-iteration copy keeps
  // one (plus the final read's trace which the write covers... the read
  // comes after the loop and is covered only if the loop ran — it is not
  // removable because the zero-trip path lacks coverage).
  EXPECT_GE(Stats.TracesRemoved, 1u);

  // Semantics preserved.
  EXPECT_EQ(runForOutput(P), Expected);

  // Events at runtime: without peeling the loop traces every iteration.
  Program NoPeel = buildFig3Loop(10);
  instrumentAll(NoPeel, true, false);
  uint64_t EventsPeeled = runAndCountEvents(P);
  uint64_t EventsUnpeeled = runAndCountEvents(NoPeel);
  EXPECT_LT(EventsPeeled, EventsUnpeeled);
}

TEST(LoopPeelingTest, PeelingAloneChangesNothingObservable) {
  // Peeling must preserve semantics for any seed even with nested control
  // flow in the loop body.
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId N = B.emitConst(7);
  B.forLoop(0, N, 1, [&](RegId I) {
    RegId Two = B.emitConst(2);
    RegId IsEven = B.emitBinOp(BinOpKind::Mod, I, Two);
    B.ifThenElse(
        IsEven, [&] { B.emitPutField(Obj, F, I); },
        [&] {
          RegId Cur = B.emitGetField(Obj, F);
          B.emitPutField(Obj, F, B.emitBinOp(BinOpKind::Add, Cur, I));
        });
  });
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();

  std::vector<int64_t> Expected = runForOutput(P);
  instrumentAll(P, true, true);
  ASSERT_TRUE(verifyProgram(P).empty());
  EXPECT_EQ(runForOutput(P), Expected);
}

TEST(LoopPeelingTest, CappedPeeling) {
  Program P = buildFig3Loop(5);
  instrumentAll(P, true, false);
  // Direct call with a zero cap: nothing peeled.
  EXPECT_EQ(peelTraceLoops(P, P.MainMethod, 0), 0u);
}

TEST(InstrumenterTest, NoDominatorsSkipsElimAndPeeling) {
  Program P = buildFig3Loop(5);
  InstrumenterStats Stats = instrumentAll(P, /*WeakerThan=*/false,
                                          /*Peeling=*/true);
  EXPECT_EQ(Stats.TracesRemoved, 0u);
  EXPECT_EQ(Stats.LoopsPeeled, 0u);
}

TEST(InstrumenterTest, InstrumentationPreservesCounterSemantics) {
  for (uint64_t Seed : {1u, 9u, 33u}) {
    CounterProgram Plain = buildCounter(true, 20);
    std::vector<int64_t> Expected = runForOutput(Plain.P, Seed);
    CounterProgram Instrumented = buildCounter(true, 20);
    instrumentAll(Instrumented.P, true, true);
    ASSERT_TRUE(verifyProgram(Instrumented.P).empty());
    // Note: the instruction streams differ, so the interleavings differ;
    // with correct locking the result must still be exact.
    EXPECT_EQ(runForOutput(Instrumented.P, Seed), Expected);
  }
}

//===----------------------------------------------------------------------===
// Superinstruction fusion (instr/Superinstr.h, docs/INTERPRETER.md)
//===----------------------------------------------------------------------===

/// Counts fused pseudo-opcodes of \p Kind across the shadow code.
size_t countFused(const ThreadedCode &TC, Opcode Kind) {
  size_t Count = 0;
  for (const auto &Blocks : TC.MethodBlocks)
    for (const BasicBlock &Block : Blocks)
      for (const Instr &I : Block.Instrs)
        if (I.Op == Kind)
          ++Count;
  return Count;
}

TEST(SuperinstrTest, CounterIncrementFusesReadModifyWrite) {
  // `o.count = o.count + 1` lowers to GetField; Const; BinOp; PutField —
  // the Const;BinOp pair fuses (greedy, left to right), and the pass
  // records each site exactly once.
  Program P = buildCounter(/*Locked=*/false, 10).P;
  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_GT(TC.Stats.sites(), 0u);
  EXPECT_EQ(countFused(TC, OpFusedConstBinOp), TC.Stats.ConstBinOpSites);
  EXPECT_EQ(countFused(TC, OpFusedConstPutField),
            TC.Stats.ConstPutFieldSites);
  EXPECT_EQ(countFused(TC, OpFusedGetBinPut), TC.Stats.GetBinPutSites);
}

TEST(SuperinstrTest, ShadowNeverMutatesTheProgram) {
  // The verified IR is untouchable: the shadow is a copy, the original
  // still verifies, and the shadow's constituents keep their opcodes and
  // operands at ip+1.. (what makes mid-sequence resumption work).
  Program P = buildCounter(/*Locked=*/true, 10).P;
  ThreadedCode TC = buildThreadedCode(P);
  ASSERT_TRUE(verifyProgram(P).empty());
  for (size_t M = 0; M != P.numMethods(); ++M) {
    const auto &Orig = P.method(MethodId(uint32_t(M))).Blocks;
    const auto &Shadow = TC.MethodBlocks[M];
    ASSERT_EQ(Orig.size(), Shadow.size());
    for (size_t BI = 0; BI != Orig.size(); ++BI) {
      ASSERT_EQ(Orig[BI].Instrs.size(), Shadow[BI].Instrs.size());
      for (size_t II = 0; II != Orig[BI].Instrs.size(); ++II) {
        const Instr &O = Orig[BI].Instrs[II];
        const Instr &S = Shadow[BI].Instrs[II];
        EXPECT_FALSE(isFusedOpcode(O.Op)) << "fused opcode leaked into IR";
        if (isFusedOpcode(S.Op)) {
          // A rewritten head keeps everything but the opcode, and every
          // constituent after it is verbatim.
          EXPECT_EQ(S.Dst, O.Dst);
          EXPECT_EQ(S.A, O.A);
          for (uint32_t K = 1; K != fusedLength(S.Op); ++K)
            EXPECT_EQ(Shadow[BI].Instrs[II + K].Op,
                      Orig[BI].Instrs[II + K].Op);
        } else {
          EXPECT_EQ(S.Op, O.Op);
        }
      }
    }
  }
}

TEST(SuperinstrTest, DivAndModNeverFuse) {
  // Division faults (the PEI); the exception boundary must stay a
  // dispatch boundary, so Const feeding Div/Mod does not fuse.
  for (BinOpKind Kind : {BinOpKind::Div, BinOpKind::Mod}) {
    Program P;
    IRBuilder B(P);
    B.startMain();
    RegId X = B.emitConst(100);
    RegId D = B.emitConst(3);
    B.emitPrint(B.emitBinOp(Kind, X, D)); // Const; BinOp(div/mod)
    B.emitReturn();
    ThreadedCode TC = buildThreadedCode(P);
    EXPECT_EQ(TC.Stats.ConstBinOpSites, 0u);
  }
  // The same shape with Add does fuse — the guard is the PEI, not the
  // pattern.
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId X = B.emitConst(100);
  RegId D = B.emitConst(3);
  B.emitPrint(B.emitBinOp(BinOpKind::Add, X, D));
  B.emitReturn();
  EXPECT_EQ(buildThreadedCode(P).Stats.ConstBinOpSites, 1u);
}

TEST(SuperinstrTest, UnfedAdjacencyDoesNotFuse) {
  // Const directly before a BinOp that does not consume its result: the
  // pair is adjacent but not dataflow-fed, so it must not fuse.
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(1);
  RegId C = B.emitConst(2);
  (void)C; // adjacent to the BinOp below, but feeds nothing
  B.emitPrint(B.emitBinOp(BinOpKind::Add, A, A));
  B.emitReturn();
  EXPECT_EQ(buildThreadedCode(P).Stats.ConstBinOpSites, 0u);
}

TEST(SuperinstrTest, SequencesNeverCrossBlockBoundaries) {
  // Const at the end of one block, the BinOp it feeds at the start of the
  // jump target: a branch target must begin at an ordinary instruction,
  // so nothing may fuse across the edge.
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId X = B.emitConst(7);
  BlockId Next = B.newBlock();
  B.emitJump(Next);
  B.setBlock(Next);
  B.emitPrint(B.emitBinOp(BinOpKind::Add, X, X));
  B.emitReturn();
  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_EQ(TC.Stats.sites(), 0u);
}

TEST(SuperinstrTest, InstrumentedAccessBlocksFusion) {
  // Instrumentation inserts the Trace AFTER the access it observes; a
  // sequence whose trailing instruction is such an access must not fuse,
  // or the access and its Trace would land in different dispatch steps.
  auto Build = [] {
    Program P;
    IRBuilder B(P);
    ClassId C = B.makeClass("Box");
    FieldId F = B.makeField(C, "f");
    ClassId W = B.makeClass("W");
    FieldId T = B.makeField(W, "t");
    // A second thread shares Box.f so the access is in the race set.
    B.startMethod(W, "run", 1);
    RegId Obj = B.emitGetField(B.thisReg(), T);
    B.emitPutField(Obj, F, B.emitConst(9)); // Const; PutField
    B.emitReturn();
    B.startMain();
    RegId Box = B.emitNew(C);
    RegId Worker = B.emitNew(W);
    B.emitPutField(Worker, T, Box);
    B.emitThreadStart(Worker);
    B.emitPutField(Box, F, B.emitConst(5)); // Const; PutField
    B.emitReturn();
    return P;
  };

  Program Plain = Build();
  EXPECT_GE(buildThreadedCode(Plain).Stats.ConstPutFieldSites, 2u);

  Program Instrumented = Build();
  instrumentAll(Instrumented, /*WeakerThan=*/false, /*Peeling=*/false);
  ThreadedCode TC = buildThreadedCode(Instrumented);
  // Every Const;PutField tail is now Trace-instrumented: zero fusions of
  // that kind survive...
  EXPECT_EQ(TC.Stats.ConstPutFieldSites, 0u);
  EXPECT_EQ(TC.Stats.GetBinPutSites, 0u);
  // ...and no fused sequence anywhere covers an instruction whose
  // successor is the Trace observing it.
  for (const auto &Blocks : TC.MethodBlocks)
    for (const BasicBlock &Block : Blocks)
      for (size_t I = 0; I != Block.Instrs.size(); ++I)
        if (isFusedOpcode(Block.Instrs[I].Op)) {
          size_t Last = I + fusedLength(Block.Instrs[I].Op) - 1;
          const Instr &Tail = Block.Instrs[Last];
          bool TailIsAccess = Tail.Op == Opcode::PutField ||
                              Tail.Op == Opcode::GetField;
          if (TailIsAccess && Last + 1 < Block.Instrs.size()) {
            EXPECT_NE(Block.Instrs[Last + 1].Op, Opcode::Trace)
                << "fused over an instrumented access";
          }
        }
}

TEST(SuperinstrTest, FusionDisabledYieldsVerbatimShadow) {
  Program P = buildCounter(/*Locked=*/false, 10).P;
  SuperinstrOptions Opts;
  Opts.Fuse = false;
  ThreadedCode TC = buildThreadedCode(P, Opts);
  EXPECT_EQ(TC.Stats.sites(), 0u);
  for (size_t M = 0; M != P.numMethods(); ++M) {
    const auto &Orig = P.method(MethodId(uint32_t(M))).Blocks;
    ASSERT_EQ(Orig.size(), TC.MethodBlocks[M].size());
    for (size_t BI = 0; BI != Orig.size(); ++BI) {
      ASSERT_EQ(Orig[BI].Instrs.size(), TC.MethodBlocks[M][BI].Instrs.size());
      for (size_t II = 0; II != Orig[BI].Instrs.size(); ++II)
        EXPECT_EQ(TC.MethodBlocks[M][BI].Instrs[II].Op,
                  Orig[BI].Instrs[II].Op);
    }
  }
}

TEST(SuperinstrTest, GreedyMatchingNeverOverlaps) {
  // GetField; BinOp; PutField; Const; BinOp: the triple claims the first
  // three, and the following pair fuses independently — constituents are
  // never shared between sequences.
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Box");
  FieldId F = B.makeField(C, "f");
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId Cur = B.emitGetField(Obj, F);
  RegId One = B.emitConst(1);
  B.emitPutField(Obj, F, B.emitBinOp(BinOpKind::Add, Cur, One));
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();
  ThreadedCode TC = buildThreadedCode(P);
  // GetField; Const; BinOp; PutField: the GetField cannot head a triple
  // (a Const sits between it and the BinOp), so the Const;BinOp pair
  // fuses instead.  Fused heads never overlap: walking the shadow,
  // every constituent of one sequence is skipped before the next match.
  EXPECT_EQ(TC.Stats.ConstBinOpSites, 1u);
  for (const auto &Blocks : TC.MethodBlocks)
    for (const BasicBlock &Block : Blocks) {
      size_t I = 0;
      while (I != Block.Instrs.size()) {
        if (isFusedOpcode(Block.Instrs[I].Op)) {
          for (uint32_t K = 1; K != fusedLength(Block.Instrs[I].Op); ++K)
            EXPECT_FALSE(isFusedOpcode(Block.Instrs[I + K].Op))
                << "overlapping fusion";
          I += fusedLength(Block.Instrs[I].Op);
        } else {
          ++I;
        }
      }
    }
}

//===----------------------------------------------------------------------===
// Widened fusion pairs + batched quantum retirement plan
//===----------------------------------------------------------------------===

/// Asserts the batch-retirement plan is internally consistent: BatchLens
/// mirrors the shadow's shape, every planned prefix honors \p MinLen and
/// fits its block, and Stats.BatchBlocks/BatchSteps are exactly the
/// count and sum of the nonzero entries.
void expectBatchPlanConsistent(const ThreadedCode &TC, uint32_t MinLen) {
  uint64_t Blocks = 0, Steps = 0;
  ASSERT_EQ(TC.BatchLens.size(), TC.MethodBlocks.size());
  for (size_t M = 0; M != TC.BatchLens.size(); ++M) {
    ASSERT_EQ(TC.BatchLens[M].size(), TC.MethodBlocks[M].size());
    for (size_t BI = 0; BI != TC.BatchLens[M].size(); ++BI) {
      uint32_t Len = TC.BatchLens[M][BI];
      if (Len == 0)
        continue;
      EXPECT_GE(Len, MinLen);
      EXPECT_LE(Len, TC.MethodBlocks[M][BI].Instrs.size());
      ++Blocks;
      Steps += Len;
    }
  }
  EXPECT_EQ(Blocks, TC.Stats.BatchBlocks);
  EXPECT_EQ(Steps, TC.Stats.BatchSteps);
}

TEST(SuperinstrTest, BinOpFeedingBranchFuses) {
  // `if (a + a) ...` with the BinOp directly conditioning the branch.
  // The preceding Const feeds nothing adjacent, so Const;BinOp cannot
  // claim the BinOp first.
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(1);
  RegId Unused = B.emitConst(2);
  (void)Unused;
  RegId Cond = B.emitBinOp(BinOpKind::Add, A, A);
  BlockId T = B.newBlock();
  BlockId F = B.newBlock();
  B.emitBranch(Cond, T, F);
  B.setBlock(T);
  B.emitReturn();
  B.setBlock(F);
  B.emitReturn();

  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_EQ(TC.Stats.BinOpBranchSites, 1u);
  EXPECT_EQ(countFused(TC, OpFusedBinOpBranch), TC.Stats.BinOpBranchSites);

  // The fused pair carries a control transfer in its tail, so it can
  // never join a retirement batch — even with the plan threshold at its
  // floor, the entry block's prefix stops before the fused head.
  SuperinstrOptions Low;
  Low.MinBatchLen = 2;
  ThreadedCode TCLow = buildThreadedCode(P, Low);
  EXPECT_EQ(TCLow.BatchLens[0][0], 2u); // Const; Const only
  expectBatchPlanConsistent(TCLow, Low.MinBatchLen);
}

TEST(SuperinstrTest, GetFieldFeedingBinOpFuses) {
  // `o.f + o.f` with no PutField tail: the triple cannot match, the
  // GetField;BinOp pair does.
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Box");
  FieldId F = B.makeField(C, "f");
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId Cur = B.emitGetField(Obj, F);
  B.emitPrint(B.emitBinOp(BinOpKind::Add, Cur, Cur));
  B.emitReturn();

  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_EQ(TC.Stats.GetFieldBinOpSites, 1u);
  EXPECT_EQ(TC.Stats.GetBinPutSites, 0u);
  EXPECT_EQ(countFused(TC, OpFusedGetFieldBinOp),
            TC.Stats.GetFieldBinOpSites);
}

TEST(SuperinstrTest, BinOpFeedingPutFieldFuses) {
  // `o.f = a + a` where the BinOp is not itself fed by an adjacent Const
  // or GetField — the computed-store pair fuses.
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Box");
  FieldId F = B.makeField(C, "f");
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId A = B.emitConst(1);
  RegId Unused = B.emitConst(2);
  (void)Unused;
  RegId Sum = B.emitBinOp(BinOpKind::Add, A, A);
  B.emitPutField(Obj, F, Sum);
  B.emitReturn();

  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_EQ(TC.Stats.BinOpPutFieldSites, 1u);
  EXPECT_EQ(countFused(TC, OpFusedBinOpPutField),
            TC.Stats.BinOpPutFieldSites);
}

TEST(SuperinstrTest, BinOpFeedingMoveFuses) {
  // `x = a + a` into a named local via Move.
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(1);
  RegId Unused = B.emitConst(2);
  (void)Unused;
  RegId Sum = B.emitBinOp(BinOpKind::Add, A, A);
  B.emitPrint(B.emitMove(Sum));
  B.emitReturn();

  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_EQ(TC.Stats.BinOpMoveSites, 1u);
  EXPECT_EQ(countFused(TC, OpFusedBinOpMove), TC.Stats.BinOpMoveSites);
}

/// A single straight-line block: Const; 14x BinOp; Print; Return.
/// 16 batchable instructions ahead of the terminator.
Program buildLongStraightLine() {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId X = B.emitConst(1);
  for (int I = 0; I != 14; ++I)
    X = B.emitBinOp(BinOpKind::Add, X, X);
  B.emitPrint(X);
  B.emitReturn();
  return P;
}

TEST(SuperinstrTest, BatchPlanCoversLongStraightLineBlocks) {
  Program P = buildLongStraightLine();
  ThreadedCode TC = buildThreadedCode(P); // default MinBatchLen = 12
  // The prefix covers everything up to the Return, counted in
  // constituent instructions (the fused Const;BinOp head counts 2).
  EXPECT_EQ(TC.BatchLens[0][0], 16u);
  EXPECT_EQ(TC.Stats.BatchBlocks, 1u);
  EXPECT_EQ(TC.Stats.BatchSteps, 16u);
  expectBatchPlanConsistent(TC, SuperinstrOptions{}.MinBatchLen);
}

TEST(SuperinstrTest, ShortBlocksFallBelowTheDefaultThreshold) {
  // Const; Const; BinOp; Print (4 batchable steps): far below the
  // default MinBatchLen, so the plan reports zero — the per-step derived
  // accounting already handles short runs at its floor cost.  Lowering
  // the threshold to 2 plans the same prefix.
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(1);
  RegId C = B.emitConst(2);
  B.emitPrint(B.emitBinOp(BinOpKind::Add, A, C));
  B.emitReturn();

  ThreadedCode Default = buildThreadedCode(P);
  EXPECT_EQ(Default.BatchLens[0][0], 0u);
  EXPECT_EQ(Default.Stats.BatchBlocks, 0u);
  EXPECT_EQ(Default.Stats.BatchSteps, 0u);

  SuperinstrOptions Low;
  Low.MinBatchLen = 2;
  ThreadedCode Planned = buildThreadedCode(P, Low);
  EXPECT_EQ(Planned.BatchLens[0][0], 4u);
  expectBatchPlanConsistent(Planned, Low.MinBatchLen);
}

TEST(SuperinstrTest, BatchDisabledZeroesThePlan) {
  // The ablation lever: Batch = false leaves every BatchLens entry at
  // zero while fusion keeps working.
  Program P = buildLongStraightLine();
  SuperinstrOptions Opts;
  Opts.Batch = false;
  ThreadedCode TC = buildThreadedCode(P, Opts);
  EXPECT_GT(TC.Stats.sites(), 0u);
  EXPECT_EQ(TC.Stats.BatchBlocks, 0u);
  EXPECT_EQ(TC.Stats.BatchSteps, 0u);
  for (const auto &Lens : TC.BatchLens)
    for (uint32_t Len : Lens)
      EXPECT_EQ(Len, 0u);
}

TEST(SuperinstrTest, BatchPrefixStopsAtInstrumentedAccess) {
  // New; Const; 12x BinOp; PutField; 12x BinOp; Print; Return.  Plain,
  // the whole straight-line run batches (uninstrumented accesses cannot
  // end a slice).  Instrumented, the PutField gains a Trace and the
  // prefix must stop in front of it so the access and its Trace retire
  // per step with the schedule intact.
  auto Build = [] {
    Program P;
    IRBuilder B(P);
    ClassId C = B.makeClass("Box");
    FieldId F = B.makeField(C, "f");
    B.startMain();
    RegId Obj = B.emitNew(C);
    RegId X = B.emitConst(1);
    for (int I = 0; I != 12; ++I)
      X = B.emitBinOp(BinOpKind::Add, X, X);
    B.emitPutField(Obj, F, X);
    for (int I = 0; I != 12; ++I)
      X = B.emitBinOp(BinOpKind::Add, X, X);
    B.emitPrint(X);
    B.emitReturn();
    return P;
  };

  Program Plain = Build();
  ThreadedCode TCPlain = buildThreadedCode(Plain);
  EXPECT_EQ(TCPlain.BatchLens[0][0], 28u); // everything but the Return

  Program Instrumented = Build();
  instrumentAll(Instrumented, /*WeakerThan=*/false, /*Peeling=*/false);
  ThreadedCode TC = buildThreadedCode(Instrumented);
  ASSERT_LT(TC.BatchLens[0][0], TCPlain.BatchLens[0][0]);
  // The prefix ends exactly at the instrumented access: New + Const +
  // 12 BinOps = 14 steps, then the PutField/Trace pair.
  ASSERT_EQ(TC.BatchLens[0][0], 14u);
  const std::vector<Instr> &Instrs = TC.MethodBlocks[0][0].Instrs;
  EXPECT_EQ(Instrs[14].Op, Opcode::PutField);
  EXPECT_EQ(Instrs[15].Op, Opcode::Trace);
  expectBatchPlanConsistent(TC, SuperinstrOptions{}.MinBatchLen);
}

} // namespace
