//===- tests/detector_property_test.cpp - Randomized detector checks ------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized stress of the detector data structures against brute force:
///
///   - the trie detector on one location must report iff the exact O(N²)
///     check finds a racing pair among the events seen so far (Definition
///     1 + precision, at the granularity the trie works at);
///   - the trie's weakness filter must only drop events that a stored
///     weaker access covers (checked against the definition directly);
///   - the dominator tree must agree with a naive quadratic dominator
///     computation on random CFGs.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "detect/AccessTrie.h"
#include "detect/Detector.h"
#include "ir/IRBuilder.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>

using namespace herd;

namespace {

//===----------------------------------------------------------------------===
// Trie vs brute force on one location.
//===----------------------------------------------------------------------===

AccessEvent randomEventAt(Rng &R, LocationKey Loc, uint32_t NumThreads,
                          uint32_t NumLocks) {
  AccessEvent E;
  E.Location = Loc;
  E.Thread = ThreadId(uint32_t(R.nextBelow(NumThreads)));
  for (uint32_t L = 0; L != NumLocks; ++L)
    if (R.nextChance(2, 5))
      E.Locks.insert(LockId(L));
  E.Access = R.nextChance(2, 5) ? AccessKind::Write : AccessKind::Read;
  return E;
}

class DetectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

/// The abstract semantics the trie implements: one (thread-lattice,
/// access-meet) summary per distinct lockset (Section 3.2's node values,
/// without the tree structure, filtering or pruning).  Theorem 1
/// guarantees that filtering and pruning never change the has-raced
/// outcome, so the trie must agree with this model at every step.
class LocksetSummaryModel {
public:
  /// Returns true when the event races against the abstract history.
  bool process(const AccessEvent &E) {
    bool Raced = false;
    for (const auto &[Locks, Value] : Groups) {
      if (Locks.intersects(E.Locks))
        continue;
      if (meet(Value.first, ThreadLattice(E.Thread)).isBottom() &&
          meet(Value.second, E.Access) == AccessKind::Write)
        Raced = true;
    }
    auto [It, Inserted] = Groups.try_emplace(
        E.Locks, std::make_pair(ThreadLattice(E.Thread), E.Access));
    if (!Inserted) {
      It->second.first = meet(It->second.first, ThreadLattice(E.Thread));
      It->second.second = meet(It->second.second, E.Access);
    }
    return Raced;
  }

private:
  std::map<LockSet, std::pair<ThreadLattice, AccessKind>> Groups;
};

TEST_P(DetectorPropertyTest, TrieMatchesTheLocksetSummaryModel) {
  // Three relationships, checked on every prefix of a random stream:
  //   1. completeness (Definition 1): if a real racing pair exists, the
  //      trie has reported;
  //   2. the trie's has-raced bit equals the abstract lockset-summary
  //      model's (the t_bottom/meet semantics of Section 3.2 — filtering
  //      and pruning are invisible, per Theorem 1);
  //   3. any report beyond the real races is explained by the t_bottom
  //      abstraction (the paper's footnote 4 spurious-report caveat) —
  //      which is exactly what (2) pins down.
  Rng R(GetParam());
  LocationKey Loc = LocationKey::forField(ObjectId(1), FieldId(0));

  AccessTrie Trie;
  LocksetSummaryModel Model;
  std::vector<AccessEvent> History;
  bool TrieEver = false, ModelEver = false, BruteEver = false;

  for (int Step = 0; Step != 300; ++Step) {
    AccessEvent E = randomEventAt(R, Loc, 3, 4);
    TrieEver |= Trie.process(E.Thread, E.Locks, E.Access).Raced;
    ModelEver |= Model.process(E);
    for (const AccessEvent &Old : History)
      BruteEver |= isRace(Old, E);
    History.push_back(std::move(E));

    EXPECT_EQ(TrieEver, ModelEver)
        << "seed " << GetParam() << " step " << Step;
    if (BruteEver) {
      EXPECT_TRUE(TrieEver)
          << "missed a real race: seed " << GetParam() << " step " << Step;
    }
  }
}

TEST_P(DetectorPropertyTest, WeaknessFilterOnlyDropsCoveredEvents) {
  // Re-run a random stream; whenever the trie filters an event, verify by
  // definition that some earlier event is weaker-or-equal.
  Rng R(GetParam() + 500);
  LocationKey Loc = LocationKey::forField(ObjectId(2), FieldId(1));
  AccessTrie Trie;
  std::vector<AccessEvent> History;
  int Filtered = 0;
  for (int Step = 0; Step != 300; ++Step) {
    AccessEvent E = randomEventAt(R, Loc, 3, 3);
    AccessTrie::Outcome Out = Trie.process(E.Thread, E.Locks, E.Access);
    if (Out.Filtered) {
      ++Filtered;
      bool Covered = false;
      for (const AccessEvent &Old : History) {
        if (isWeakerOrEqual(Old, E)) {
          Covered = true;
          break;
        }
        // The t_bottom abstraction also covers: two earlier events from
        // distinct threads with identical locksets subsuming E's check.
        for (const AccessEvent &Other : History) {
          if (&Old == &Other)
            continue;
          if (Old.Locks == Other.Locks && Old.Thread != Other.Thread &&
              Old.Locks.isSubsetOf(E.Locks) &&
              isWeakerOrEqual(meet(Old.Access, Other.Access), E.Access)) {
            Covered = true;
            break;
          }
        }
        if (Covered)
          break;
      }
      EXPECT_TRUE(Covered) << "seed " << GetParam() << " step " << Step;
    }
    History.push_back(std::move(E));
  }
  EXPECT_GT(Filtered, 50) << "stream should exercise the filter heavily";
}

TEST_P(DetectorPropertyTest, MultiLocationDetectorMatchesPerLocationTries) {
  // The Detector's location table must behave as independent tries.
  Rng R(GetParam() + 900);
  RaceReporter TableReporter;
  Detector Table(TableReporter, {/*UseOwnership=*/false, false});
  std::map<uint64_t, AccessTrie> Independent;
  std::set<uint64_t> IndependentRaced;

  for (int Step = 0; Step != 500; ++Step) {
    LocationKey Loc = LocationKey::forField(
        ObjectId(uint32_t(R.nextBelow(4))), FieldId(uint32_t(R.nextBelow(2))));
    AccessEvent E = randomEventAt(R, Loc, 3, 3);
    Table.handleAccess(E);
    if (Independent[Loc.raw()].process(E.Thread, E.Locks, E.Access).Raced)
      IndependentRaced.insert(Loc.raw());
  }

  std::set<uint64_t> TableRaced;
  for (LocationKey Loc : TableReporter.reportedLocations())
    TableRaced.insert(Loc.raw());
  EXPECT_EQ(TableRaced, IndependentRaced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===
// Dominators vs naive reference.
//===----------------------------------------------------------------------===

/// Builds a random (reducible or irreducible) CFG as a MiniJ method of
/// N blocks with random branch targets; every block gets a terminator.
Program randomCFGProgram(Rng &R, size_t NumBlocks) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId Cond = B.emitConst(1);
  std::vector<BlockId> Blocks;
  Blocks.push_back(B.currentBlock());
  for (size_t I = 1; I != NumBlocks; ++I)
    Blocks.push_back(B.newBlock());
  for (size_t I = 0; I != NumBlocks; ++I) {
    B.setBlock(Blocks[I]);
    uint64_t Kind = R.nextBelow(10);
    if (Kind < 2 || I + 1 == NumBlocks) {
      B.emitReturn();
    } else if (Kind < 6) {
      B.emitJump(Blocks[R.nextBelow(NumBlocks)]);
    } else {
      Instr Br;
      Br.Op = Opcode::Branch;
      Br.A = Cond;
      Br.Target = Blocks[R.nextBelow(NumBlocks)];
      Br.AltTarget = Blocks[R.nextBelow(NumBlocks)];
      P.method(P.MainMethod).block(Blocks[I]).Instrs.push_back(Br);
    }
  }
  return P;
}

/// Naive dominators: D dominates B iff removing D makes B unreachable.
bool naiveDominates(const CFG &Cfg, BlockId D, BlockId B) {
  if (D == B)
    return true;
  std::vector<uint8_t> Visited(Cfg.numBlocks(), 0);
  std::vector<BlockId> Work = {BlockId(0)};
  Visited[0] = 1;
  if (D == BlockId(0))
    return Cfg.isReachable(B);
  while (!Work.empty()) {
    BlockId Cur = Work.back();
    Work.pop_back();
    for (BlockId Succ : Cfg.successors(Cur)) {
      if (Succ == D || Visited[Succ.index()])
        continue;
      Visited[Succ.index()] = 1;
      Work.push_back(Succ);
    }
  }
  return !Visited[B.index()];
}

class DominatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DominatorPropertyTest, AgreesWithReachabilityDefinition) {
  Rng R(GetParam());
  for (int Trial = 0; Trial != 10; ++Trial) {
    Program P = randomCFGProgram(R, 4 + R.nextBelow(8));
    CFG Cfg(P, P.MainMethod);
    for (uint32_t A = 0; A != Cfg.numBlocks(); ++A)
      for (uint32_t B = 0; B != Cfg.numBlocks(); ++B) {
        BlockId BA(A), BB(B);
        if (!Cfg.isReachable(BA) || !Cfg.isReachable(BB))
          continue;
        EXPECT_EQ(Cfg.dominates(BA, BB), naiveDominates(Cfg, BA, BB))
            << "seed " << GetParam() << " trial " << Trial << " blocks "
            << A << "," << B;
      }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
