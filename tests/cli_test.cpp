//===- tests/cli_test.cpp - herd command-line parsing tests ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the `herd` tool's argument grammar (herd/HerdOptions.h):
/// every flag's happy path, every validation message, the cross-flag
/// conflict rules, and the preset-vs-flag ordering guarantees that the
/// CLI integration tests cannot pin without spawning one process per case.
///
//===----------------------------------------------------------------------===//

#include "herd/HerdOptions.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace herd;

namespace {

HerdParse parse(std::vector<std::string> Args) {
  return parseHerdCommandLine(Args);
}

/// Expects an Error outcome carrying exactly \p Message.
void expectError(const HerdParse &P, const std::string &Message) {
  EXPECT_EQ(P.St, HerdParse::Status::Error);
  EXPECT_EQ(P.Error, Message);
}

//===----------------------------------------------------------------------===
// Happy paths
//===----------------------------------------------------------------------===

TEST(CliTest, DefaultsForPlainRun) {
  HerdParse P = parse({"prog.mj"});
  ASSERT_EQ(P.St, HerdParse::Status::Run);
  EXPECT_EQ(P.Opts.Path, "prog.mj");
  EXPECT_TRUE(P.Opts.WorkloadName.empty());
  EXPECT_EQ(P.Opts.Seed, 1u);
  EXPECT_EQ(P.Opts.Sweep, 0);
  EXPECT_EQ(P.Opts.Detector, "herd");
  EXPECT_EQ(P.Opts.Config.Shards, 0u);
  EXPECT_EQ(P.Opts.Config.CacheEntries, 256u);
  EXPECT_EQ(P.Opts.Config.Plan, ToolConfig::PlanMode::Auto);
  EXPECT_FALSE(P.Opts.Stats);
  EXPECT_FALSE(P.Opts.StatsJson);
  EXPECT_FALSE(P.Opts.Profile);
  EXPECT_FALSE(P.Opts.Deadlocks);
  EXPECT_FALSE(P.Opts.DumpIR);
  EXPECT_TRUE(P.Opts.TraceJsonPath.empty());
}

TEST(CliTest, AllFlagsLand) {
  HerdParse P = parse({"--workload=mtrt", "--seed=9", "--shards=4",
                       "--cache-size=512", "--plan=1000", "--deadlocks",
                       "--stats", "--trace-json=t.json", "--profile"});
  ASSERT_EQ(P.St, HerdParse::Status::Run) << P.Error;
  EXPECT_EQ(P.Opts.WorkloadName, "mtrt");
  EXPECT_EQ(P.Opts.Seed, 9u);
  EXPECT_EQ(P.Opts.Config.Seed, 9u);
  EXPECT_EQ(P.Opts.Config.Shards, 4u);
  EXPECT_EQ(P.Opts.Config.CacheEntries, 512u);
  EXPECT_EQ(P.Opts.Config.Plan, ToolConfig::PlanMode::Explicit);
  EXPECT_EQ(P.Opts.Config.PlanLocations, 1000u);
  EXPECT_TRUE(P.Opts.Config.DetectDeadlocks);
  EXPECT_TRUE(P.Opts.Stats);
  EXPECT_EQ(P.Opts.TraceJsonPath, "t.json");
  EXPECT_TRUE(P.Opts.Profile);
}

TEST(CliTest, StatsVariants) {
  EXPECT_TRUE(parse({"p.mj", "--stats"}).Opts.Stats);
  EXPECT_TRUE(parse({"p.mj", "--stats=human"}).Opts.Stats);
  HerdParse Json = parse({"p.mj", "--stats=json"});
  ASSERT_EQ(Json.St, HerdParse::Status::Run);
  EXPECT_TRUE(Json.Opts.StatsJson);
  EXPECT_FALSE(Json.Opts.Stats);
  expectError(parse({"p.mj", "--stats=csv"}),
              "herd: --stats expects human or json, got 'csv'");
}

TEST(CliTest, HelpShortCircuits) {
  EXPECT_EQ(parse({"--help"}).St, HerdParse::Status::Help);
  EXPECT_EQ(parse({"-h"}).St, HerdParse::Status::Help);
  // --help wins even on an otherwise-broken command line.
  EXPECT_EQ(parse({"--plan=bogus", "--help"}).St, HerdParse::Status::Error);
  EXPECT_EQ(parse({"--help", "--plan=bogus"}).St, HerdParse::Status::Help);
}

TEST(CliTest, UsageTextMentionsEveryFlag) {
  std::string Usage = herdUsageText();
  for (const char *Flag :
       {"--config=", "--seed=", "--shards=", "--cache-size=", "--plan=",
        "--sweep=", "--record=", "--replay=", "--detector=", "--deadlocks",
        "--stats", "--trace-json=", "--profile", "--dispatch=",
        "--hook-filter=", "--report=", "--provenance=", "--dump-ir",
        "--workload="})
    EXPECT_NE(Usage.find(Flag), std::string::npos) << Flag;
}

TEST(CliTest, DispatchModes) {
  // The build's default stands when the flag is absent...
#ifdef HERD_DEFAULT_DISPATCH_SWITCH
  EXPECT_EQ(parse({"p.mj"}).Opts.Config.Dispatch, DispatchMode::Switch);
#else
  EXPECT_EQ(parse({"p.mj"}).Opts.Config.Dispatch, DispatchMode::Threaded);
#endif
  // ...and both explicit spellings override it.
  EXPECT_EQ(parse({"p.mj", "--dispatch=switch"}).Opts.Config.Dispatch,
            DispatchMode::Switch);
  EXPECT_EQ(parse({"p.mj", "--dispatch=threaded"}).Opts.Config.Dispatch,
            DispatchMode::Threaded);
  expectError(parse({"p.mj", "--dispatch=goto"}),
              "herd: --dispatch expects switch or threaded, got 'goto'");
  expectError(parse({"p.mj", "--dispatch="}),
              "herd: --dispatch expects switch or threaded, got ''");
}

TEST(CliTest, DispatchSurvivesPreset) {
  // Like --shards/--plan, an explicit --dispatch must survive a later
  // --config preset (which rebuilds the whole ToolConfig).
  HerdParse P = parse({"p.mj", "--dispatch=switch", "--config=base"});
  ASSERT_EQ(P.St, HerdParse::Status::Run) << P.Error;
  EXPECT_EQ(P.Opts.Config.Dispatch, DispatchMode::Switch);
  EXPECT_FALSE(P.Opts.Config.Instrument); // the preset still applied
}

TEST(CliTest, HookFilterModes) {
  // Default is on; both spellings parse; anything else is an error, not a
  // silently different run.
  EXPECT_TRUE(parse({"p.mj"}).Opts.Config.HookFilter);
  EXPECT_TRUE(parse({"p.mj", "--hook-filter=on"}).Opts.Config.HookFilter);
  EXPECT_FALSE(parse({"p.mj", "--hook-filter=off"}).Opts.Config.HookFilter);
  expectError(parse({"p.mj", "--hook-filter=maybe"}),
              "herd: --hook-filter expects on or off, got 'maybe'");
  expectError(parse({"p.mj", "--hook-filter="}),
              "herd: --hook-filter expects on or off, got ''");
  expectError(parse({"p.mj", "--hook-filter=ON"}),
              "herd: --hook-filter expects on or off, got 'ON'");
}

TEST(CliTest, ReportFormats) {
  // Default is human; all three spellings parse; anything else dies at
  // parse time with the accepted list, like --detector.
  EXPECT_EQ(parse({"p.mj"}).Opts.Report, "human");
  EXPECT_EQ(parse({"p.mj", "--report=human"}).Opts.Report, "human");
  EXPECT_EQ(parse({"p.mj", "--report=json"}).Opts.Report, "json");
  EXPECT_EQ(parse({"p.mj", "--report=sarif"}).Opts.Report, "sarif");
  expectError(parse({"p.mj", "--report=xml"}),
              "herd: --report expects human, json, or sarif, got 'xml'");
  expectError(parse({"p.mj", "--report="}),
              "herd: --report expects human, json, or sarif, got ''");
  expectError(parse({"p.mj", "--report=JSON"}),
              "herd: --report expects human, json, or sarif, got 'JSON'");
}

TEST(CliTest, ReportDocumentOwnsStdout) {
  // The machine-readable documents own stdout, exactly like --stats=json:
  // no sweeps, no competing stdout writers, no baseline detectors.
  expectError(parse({"p.mj", "--report=json", "--sweep=3"}),
              "herd: --report=json/--report=sarif cannot be combined with "
              "--sweep");
  expectError(parse({"p.mj", "--report=sarif", "--stats"}),
              "herd: --report=json/--report=sarif own stdout and cannot be "
              "combined with --stats/--profile");
  expectError(parse({"p.mj", "--report=json", "--stats=json"}),
              "herd: --report=json/--report=sarif own stdout and cannot be "
              "combined with --stats/--profile");
  expectError(parse({"p.mj", "--report=json", "--profile"}),
              "herd: --report=json/--report=sarif own stdout and cannot be "
              "combined with --stats/--profile");
  expectError(parse({"p.mj", "--report=json", "--dump-ir"}),
              "herd: --report=json/--report=sarif own stdout and cannot be "
              "combined with --dump-ir");
  expectError(
      parse({"p.mj", "--replay=t.trace", "--detector=eraser",
             "--report=json"}),
      "herd: --report only applies to the herd and epoch detectors");
  // The herd and epoch pipelines both export.
  EXPECT_EQ(parse({"p.mj", "--replay=t.trace", "--report=sarif"}).St,
            HerdParse::Status::Run);
  EXPECT_EQ(parse({"p.mj", "--replay=t.trace", "--detector=epoch",
                   "--report=json"})
                .St,
            HerdParse::Status::Run);
}

TEST(CliTest, ProvenanceModes) {
  // Default is off (zero-cost-when-off); both spellings parse; anything
  // else is an error, not a silently different run.
  EXPECT_FALSE(parse({"p.mj"}).Opts.Config.Provenance);
  EXPECT_TRUE(parse({"p.mj", "--provenance=on"}).Opts.Config.Provenance);
  EXPECT_FALSE(parse({"p.mj", "--provenance=off"}).Opts.Config.Provenance);
  expectError(parse({"p.mj", "--provenance=maybe"}),
              "herd: --provenance expects on or off, got 'maybe'");
  expectError(parse({"p.mj", "--provenance="}),
              "herd: --provenance expects on or off, got ''");
  expectError(parse({"p.mj", "--provenance=ON"}),
              "herd: --provenance expects on or off, got 'ON'");
}

TEST(CliTest, ProvenanceSurvivesPreset) {
  // An explicit --provenance must survive a later --config preset (which
  // rebuilds the whole ToolConfig), like --hook-filter/--dispatch.
  HerdParse P = parse({"p.mj", "--provenance=on", "--config=full"});
  ASSERT_EQ(P.St, HerdParse::Status::Run) << P.Error;
  EXPECT_TRUE(P.Opts.Config.Provenance);
}

TEST(CliTest, HookFilterSurvivesPreset) {
  // An explicit --hook-filter must survive a later --config preset (which
  // rebuilds the whole ToolConfig), like --dispatch/--shards/--plan.
  HerdParse P = parse({"p.mj", "--hook-filter=off", "--config=full"});
  ASSERT_EQ(P.St, HerdParse::Status::Run) << P.Error;
  EXPECT_FALSE(P.Opts.Config.HookFilter);
}

//===----------------------------------------------------------------------===
// Preset-vs-flag ordering
//===----------------------------------------------------------------------===

TEST(CliTest, PresetAfterFlagDoesNotClobber) {
  // --config resets the whole ToolConfig; explicit --shards/--cache-size/
  // --plan must survive no matter where the preset sits.
  HerdParse P = parse({"p.mj", "--shards=3", "--cache-size=64", "--plan=off",
                       "--config=nocache"});
  ASSERT_EQ(P.St, HerdParse::Status::Run) << P.Error;
  EXPECT_EQ(P.Opts.Config.Shards, 3u);
  EXPECT_EQ(P.Opts.Config.CacheEntries, 64u);
  EXPECT_EQ(P.Opts.Config.Plan, ToolConfig::PlanMode::Off);
  EXPECT_FALSE(P.Opts.Config.UseCache); // the preset still applied
}

TEST(CliTest, EveryPresetNameResolves) {
  for (const char *Name : {"full", "nostatic", "nodominators", "nopeeling",
                           "nocache", "fieldsmerged", "noownership", "base"}) {
    ToolConfig C;
    EXPECT_TRUE(pickToolConfig(Name, C)) << Name;
  }
  ToolConfig C;
  EXPECT_FALSE(pickToolConfig("notaconfig", C));
  expectError(parse({"p.mj", "--config=notaconfig"}),
              "herd: unknown config 'notaconfig'");
}

//===----------------------------------------------------------------------===
// Per-flag validation
//===----------------------------------------------------------------------===

TEST(CliTest, MissingInputShowsUsage) {
  HerdParse P = parse({"--stats"});
  EXPECT_EQ(P.St, HerdParse::Status::Error);
  EXPECT_TRUE(P.Error.empty());
  EXPECT_TRUE(P.ShowUsage);
}

TEST(CliTest, UnknownOptionShowsUsage) {
  HerdParse P = parse({"p.mj", "--frobnicate"});
  expectError(P, "herd: unknown option '--frobnicate'");
  EXPECT_TRUE(P.ShowUsage);
}

TEST(CliTest, BadShards) {
  expectError(parse({"p.mj", "--shards=abc"}),
              "herd: --shards expects a number, got 'abc'");
  expectError(parse({"p.mj", "--shards="}),
              "herd: --shards expects a number, got ''");
  expectError(parse({"p.mj", "--shards=4x"}),
              "herd: --shards expects a number, got '4x'");
}

TEST(CliTest, BadCacheSize) {
  const std::string Msg =
      "herd: --cache-size expects a power of two in [1, 2^20], got '";
  expectError(parse({"p.mj", "--cache-size=0"}), Msg + "0'");
  expectError(parse({"p.mj", "--cache-size=3"}), Msg + "3'");
  expectError(parse({"p.mj", "--cache-size=2097152"}), Msg + "2097152'");
  expectError(parse({"p.mj", "--cache-size=abc"}), Msg + "abc'");
  EXPECT_EQ(parse({"p.mj", "--cache-size=1"}).St, HerdParse::Status::Run);
  EXPECT_EQ(parse({"p.mj", "--cache-size=1048576"}).St,
            HerdParse::Status::Run);
}

TEST(CliTest, BadPlan) {
  const std::string Msg =
      "herd: --plan expects auto, off, or a positive location count, got '";
  expectError(parse({"p.mj", "--plan=maybe"}), Msg + "maybe'");
  expectError(parse({"p.mj", "--plan=0"}), Msg + "0'");
  expectError(parse({"p.mj", "--plan="}), Msg + "'");
  expectError(parse({"p.mj", "--plan=12x"}), Msg + "12x'");
  EXPECT_EQ(parse({"p.mj", "--plan=auto"}).Opts.Config.Plan,
            ToolConfig::PlanMode::Auto);
  EXPECT_EQ(parse({"p.mj", "--plan=off"}).Opts.Config.Plan,
            ToolConfig::PlanMode::Off);
}

TEST(CliTest, BadSweep) {
  // --sweep went through raw atoi for five PRs: '--sweep=5x' silently ran
  // 5 seeds and '--sweep=-3' / '--sweep=abc' silently ran NO sweep at
  // all.  Every malformed count is now a hard CLI error.
  const std::string Msg =
      "herd: --sweep expects a seed count in [1, 1000000], got '";
  expectError(parse({"p.mj", "--sweep=5x"}), Msg + "5x'");
  expectError(parse({"p.mj", "--sweep=-3"}), Msg + "-3'");
  expectError(parse({"p.mj", "--sweep=abc"}), Msg + "abc'");
  expectError(parse({"p.mj", "--sweep="}), Msg + "'");
  expectError(parse({"p.mj", "--sweep=0"}), Msg + "0'");
  expectError(parse({"p.mj", "--sweep= 5"}), Msg + " 5'");
  expectError(parse({"p.mj", "--sweep=+5"}), Msg + "+5'");
  expectError(parse({"p.mj", "--sweep=1000001"}), Msg + "1000001'");
  HerdParse Ok = parse({"p.mj", "--sweep=17"});
  ASSERT_EQ(Ok.St, HerdParse::Status::Run) << Ok.Error;
  EXPECT_EQ(Ok.Opts.Sweep, 17);
  EXPECT_EQ(parse({"p.mj", "--sweep=1000000"}).St, HerdParse::Status::Run);
}

TEST(CliTest, BadSeed) {
  // Same sweep for --seed, which used an unchecked strtoull: junk became
  // seed 0, and a negative wrapped to a huge value — both silently
  // changed which schedule ran.
  const std::string Msg = "herd: --seed expects a non-negative number, got '";
  expectError(parse({"p.mj", "--seed=abc"}), Msg + "abc'");
  expectError(parse({"p.mj", "--seed=7q"}), Msg + "7q'");
  expectError(parse({"p.mj", "--seed=-1"}), Msg + "-1'");
  expectError(parse({"p.mj", "--seed="}), Msg + "'");
  HerdParse Ok = parse({"p.mj", "--seed=0"});
  ASSERT_EQ(Ok.St, HerdParse::Status::Run) << Ok.Error;
  EXPECT_EQ(Ok.Opts.Seed, 0u);
  EXPECT_EQ(parse({"p.mj", "--seed=18446744073709551615"}).Opts.Seed,
            18446744073709551615ull);
}

TEST(CliTest, EmptyPathFlags) {
  expectError(parse({"p.mj", "--record="}),
              "herd: --record expects a file path");
  expectError(parse({"p.mj", "--replay="}),
              "herd: --replay expects a file path");
  expectError(parse({"p.mj", "--trace-json="}),
              "herd: --trace-json expects a file path");
}

TEST(CliTest, UnknownDetector) {
  // Rejected at parse time with the accepted-values list, before any
  // program or trace is touched.
  expectError(parse({"p.mj", "--detector=tsan"}),
              "herd: unknown detector 'tsan' "
              "(accepted: herd, epoch, eraser, vectorclock, naive)");
  expectError(parse({"p.mj", "--detector=fasttrack"}),
              "herd: unknown detector 'fasttrack' "
              "(accepted: herd, epoch, eraser, vectorclock, naive)");
  expectError(parse({"p.mj", "--detector="}),
              "herd: unknown detector '' "
              "(accepted: herd, epoch, eraser, vectorclock, naive)");
  // Misspellings of valid names are still unknown names, even with
  // --replay present.
  expectError(parse({"p.mj", "--replay=t.trace", "--detector=Epoch"}),
              "herd: unknown detector 'Epoch' "
              "(accepted: herd, epoch, eraser, vectorclock, naive)");
}

//===----------------------------------------------------------------------===
// Cross-flag conflicts
//===----------------------------------------------------------------------===

TEST(CliTest, ReplayExcludesSweepAndRecord) {
  expectError(parse({"p.mj", "--replay=t.trace", "--sweep=5"}),
              "herd: --replay cannot be combined with --sweep/--record");
  expectError(parse({"p.mj", "--replay=t.trace", "--record=u.trace"}),
              "herd: --replay cannot be combined with --sweep/--record");
  expectError(parse({"p.mj", "--record=t.trace", "--sweep=5"}),
              "herd: --record cannot be combined with --sweep");
}

TEST(CliTest, DetectorRequiresReplay) {
  expectError(parse({"p.mj", "--detector=eraser"}),
              "herd: --detector requires --replay");
  EXPECT_EQ(parse({"p.mj", "--detector=eraser", "--replay=t.trace"}).St,
            HerdParse::Status::Run);
}

TEST(CliTest, EpochDetectorRunsLiveAndReplay) {
  // Unlike the comparison baselines, the epoch backend is a first-class
  // detector: it runs live (serial) as well as under --replay.
  HerdParse Live = parse({"p.mj", "--detector=epoch"});
  ASSERT_EQ(Live.St, HerdParse::Status::Run) << Live.Error;
  EXPECT_EQ(Live.Opts.Config.Backend, ToolConfig::DetectorBackend::Epoch);
  HerdParse Replay = parse({"p.mj", "--replay=t.trace", "--detector=epoch"});
  ASSERT_EQ(Replay.St, HerdParse::Status::Run) << Replay.Error;
  EXPECT_EQ(Replay.Opts.Config.Backend, ToolConfig::DetectorBackend::Epoch);
  // The default stays on the herd backend.
  EXPECT_EQ(parse({"p.mj"}).Opts.Config.Backend,
            ToolConfig::DetectorBackend::Herd);
}

TEST(CliTest, EpochDetectorExcludesShards) {
  expectError(parse({"p.mj", "--detector=epoch", "--shards=2"}),
              "herd: --detector=epoch runs the serial happens-before "
              "backend and cannot be combined with --shards");
}

TEST(CliTest, ObservabilityExcludesSweep) {
  const std::string Msg =
      "herd: --profile/--stats=json/--trace-json cannot be combined with "
      "--sweep";
  expectError(parse({"p.mj", "--sweep=5", "--profile"}), Msg);
  expectError(parse({"p.mj", "--sweep=5", "--stats=json"}), Msg);
  expectError(parse({"p.mj", "--sweep=5", "--trace-json=t.json"}), Msg);
  // Human stats still sweep fine.
  EXPECT_EQ(parse({"p.mj", "--sweep=5", "--stats"}).St,
            HerdParse::Status::Run);
}

TEST(CliTest, ProfileRequiresLiveRun) {
  expectError(parse({"p.mj", "--replay=t.trace", "--profile"}),
              "herd: --profile requires a live run, not --replay");
}

TEST(CliTest, BaselineDetectorsHaveNoJsonOutputs) {
  const std::string Msg =
      "herd: --stats=json/--trace-json only apply to the herd detector";
  expectError(
      parse({"p.mj", "--replay=t.trace", "--detector=naive", "--stats=json"}),
      Msg);
  expectError(parse({"p.mj", "--replay=t.trace", "--detector=vectorclock",
                     "--trace-json=t.json"}),
              Msg);
  // The herd detector replay supports both, and so does epoch — it runs
  // through the full pipeline with its own stats section.
  EXPECT_EQ(
      parse({"p.mj", "--replay=t.trace", "--stats=json"}).St,
      HerdParse::Status::Run);
  EXPECT_EQ(parse({"p.mj", "--replay=t.trace", "--detector=epoch",
                   "--stats=json"})
                .St,
            HerdParse::Status::Run);
  EXPECT_EQ(parse({"p.mj", "--detector=epoch", "--trace-json=t.json"}).St,
            HerdParse::Status::Run);
}

} // namespace
