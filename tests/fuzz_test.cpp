//===- tests/fuzz_test.cpp - Random-program property tests ----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random multithreaded MiniJ programs — shared objects, lock
/// objects, nested synchronized regions, loops, start/join — and checks
/// the system-level invariants of DESIGN.md on each:
///
///   1. with full instrumentation (no static pruning / elimination /
///      peeling), the detector's reported locations equal the exact O(N²)
///      oracle's racy locations (Definition 1 + precision);
///   2. the cache never changes the reported set;
///   3. every optimized configuration's reports are a subset of the
///      oracle's (no optimization can create a false positive);
///   4. Eraser reports a superset of our per-object reports;
///   5. runs are deterministic per seed;
///   6. instrumentation never breaks program well-formedness.
///
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"
#include "baselines/NaiveDetector.h"
#include "detect/RaceRuntime.h"
#include "herd/Pipeline.h"
#include "instr/Instrumenter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

/// Generates a random, always-terminating multithreaded program.
///
/// Shape: main allocates D data objects (2 int fields each) and L lock
/// objects, wires them into 2-3 worker threads, starts all workers, joins
/// a random subset, and possibly touches data afterwards.  Each worker's
/// run() does a bounded loop of random field reads/writes, optionally
/// inside (possibly nested) synchronized regions, with occasional yields.
Program generateProgram(uint64_t Seed) {
  Rng R(Seed);
  Program P;
  IRBuilder B(P);

  ClassId Data = B.makeClass("Data");
  FieldId F0 = B.makeField(Data, "f0");
  FieldId F1 = B.makeField(Data, "f1");
  ClassId LockCls = B.makeClass("Lock");

  size_t NumData = 2 + R.nextBelow(3);   // 2..4
  size_t NumLocks = 1 + R.nextBelow(2);  // 1..2
  size_t NumWorkers = 2 + R.nextBelow(2); // 2..3

  ClassId Worker = B.makeClass("Worker");
  std::vector<FieldId> WData, WLocks;
  for (size_t I = 0; I != NumData; ++I)
    WData.push_back(B.makeField(Worker, "d" + std::to_string(I)));
  for (size_t I = 0; I != NumLocks; ++I)
    WLocks.push_back(B.makeField(Worker, "l" + std::to_string(I)));

  // Worker.run: random accesses under random (possibly nested) locking.
  B.startMethod(Worker, "run", 1);
  {
    RegId This = B.thisReg();
    std::vector<RegId> DataRegs, LockRegs;
    for (FieldId F : WData)
      DataRegs.push_back(B.emitGetField(This, F));
    for (FieldId F : WLocks)
      LockRegs.push_back(B.emitGetField(This, F));

    // One random access.
    auto EmitAccess = [&] {
      RegId Obj = DataRegs[R.nextBelow(DataRegs.size())];
      FieldId F = R.nextChance(1, 2) ? F0 : F1;
      if (R.nextChance(1, 2)) {
        RegId Cur = B.emitGetField(Obj, F);
        B.emitPutField(Obj, F,
                       B.emitBinOp(BinOpKind::Add, Cur, B.emitConst(1)));
      } else {
        B.emitPrint(B.emitGetField(Obj, F));
      }
    };

    // A run of 1-3 accesses, possibly wrapped in nested sync regions.
    // Nested acquisitions respect the global lock order (ascending index):
    // generated programs must never truly deadlock, or termination tests
    // become schedule lotteries.  (Deadlock *detection* has its own
    // dedicated tests with deliberately inverted orders.)
    std::function<void(size_t)> EmitGroup = [&](size_t MinLock) {
      if (MinLock < LockRegs.size() && R.nextChance(1, 2)) {
        size_t Pick = MinLock + R.nextBelow(LockRegs.size() - MinLock);
        B.sync(LockRegs[Pick], [&] { EmitGroup(Pick + 1); });
        return;
      }
      size_t Count = 1 + R.nextBelow(3);
      for (size_t I = 0; I != Count; ++I)
        EmitAccess();
      if (R.nextChance(1, 3))
        B.emitYield();
    };

    RegId Iters = B.emitConst(int64_t(2 + R.nextBelow(5)));
    B.forLoop(0, Iters, 1, [&](RegId) {
      size_t Groups = 1 + R.nextBelow(3);
      for (size_t I = 0; I != Groups; ++I)
        EmitGroup(0);
    });
    B.emitReturn();
  }

  // main.
  B.startMain();
  std::vector<RegId> DataObjs, LockObjs;
  for (size_t I = 0; I != NumData; ++I) {
    RegId Obj = B.emitNew(Data);
    // Random initialization (ownership will absorb these).
    if (R.nextChance(2, 3))
      B.emitPutField(Obj, F0, B.emitConst(int64_t(R.nextBelow(100))));
    DataObjs.push_back(Obj);
  }
  for (size_t I = 0; I != NumLocks; ++I)
    LockObjs.push_back(B.emitNew(LockCls));

  std::vector<RegId> Workers;
  for (size_t W = 0; W != NumWorkers; ++W) {
    RegId Wk = B.emitNew(Worker);
    for (size_t I = 0; I != NumData; ++I)
      B.emitPutField(Wk, WData[I], DataObjs[R.nextBelow(DataObjs.size())]);
    for (size_t I = 0; I != NumLocks; ++I)
      B.emitPutField(Wk, WLocks[I], LockObjs[R.nextBelow(LockObjs.size())]);
    Workers.push_back(Wk);
  }
  for (RegId Wk : Workers)
    B.emitThreadStart(Wk);
  // Join a random subset (possibly none, possibly all).
  for (RegId Wk : Workers)
    if (R.nextChance(2, 3))
      B.emitThreadJoin(Wk);
  // Sometimes touch shared data afterwards (races with unjoined workers).
  if (R.nextChance(1, 2))
    B.emitPrint(B.emitGetField(DataObjs[0], F0));
  B.emitReturn();
  return P;
}

/// Instruments every access, then runs once with the detector and the
/// exact oracle observing the SAME execution (ownership is
/// schedule-sensitive, so the oracle must see the very same event order).
struct SharedRun {
  std::set<LocationKey> Detector;
  std::set<LocationKey> Oracle;
  std::set<LocationKey> OracleNoOwnership;
  std::set<ObjectId> EraserObjects;
};

SharedRun runDetectorAndOraclesTogether(Program P, uint64_t Seed) {
  InstrumenterOptions IOpts;
  IOpts.UseStaticRaceSet = false;
  IOpts.StaticWeakerThan = false;
  IOpts.LoopPeeling = false;
  instrumentProgram(P, IOpts, nullptr);

  RaceRuntime RT;
  NaiveDetector Oracle;
  NaiveDetector::Options NoOwnOpts;
  NoOwnOpts.UseOwnership = false;
  NaiveDetector OracleNoOwn(NoOwnOpts);
  EraserDetector Eraser;
  FanoutHooks Fanout{&RT, &Oracle, &OracleNoOwn, &Eraser};

  InterpOptions Opts;
  Opts.Seed = Seed;
  Interpreter Interp(P, &Fanout, Opts);
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;

  SharedRun Out;
  Out.Detector = RT.reporter().reportedLocations();
  Out.Oracle = Oracle.racyLocations();
  Out.OracleNoOwnership = OracleNoOwn.racyLocations();
  for (LocationKey Loc : Eraser.reportedLocations())
    Out.EraserObjects.insert(Loc.object());
  return Out;
}

ToolConfig unoptimizedConfig(uint64_t Seed) {
  ToolConfig Config;
  Config.StaticAnalysis = false;
  Config.StaticWeakerThan = false;
  Config.LoopPeeling = false;
  Config.Seed = Seed;
  return Config;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, GeneratedProgramIsWellFormedAndTerminates) {
  Program P = generateProgram(GetParam());
  auto Problems = verifyProgram(P);
  ASSERT_TRUE(Problems.empty()) << Problems[0];
  PipelineResult R = runPipeline(P, ToolConfig::base());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
}

TEST_P(FuzzTest, UnoptimizedReportsEqualTheOracle) {
  for (uint64_t ScheduleSeed : {1u, 13u}) {
    SharedRun Run =
        runDetectorAndOraclesTogether(generateProgram(GetParam()),
                                      ScheduleSeed);
    EXPECT_EQ(Run.Detector, Run.Oracle)
        << "program seed " << GetParam() << " schedule " << ScheduleSeed;
  }
}

TEST_P(FuzzTest, CacheIsTransparent) {
  Program P = generateProgram(GetParam());
  ToolConfig WithCache = unoptimizedConfig(7);
  ToolConfig NoCache = unoptimizedConfig(7);
  NoCache.UseCache = false;
  PipelineResult A = runPipeline(P, WithCache);
  PipelineResult B = runPipeline(P, NoCache);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_EQ(A.Reports.reportedLocations(), B.Reports.reportedLocations());
}

TEST_P(FuzzTest, OptimizedConfigsNeverInventRaces) {
  // The comparison oracle disables ownership: its racy-location set is
  // then schedule-independent for these programs (per-thread event
  // sequences do not depend on shared data), so it soundly bounds every
  // configuration's reports regardless of how instrumentation perturbs
  // the schedule.  Ownership and the optimizations can only *remove*
  // events, never manufacture a conflicting pair.
  Program P = generateProgram(GetParam());
  SharedRun Ref = runDetectorAndOraclesTogether(P, 7);
  for (ToolConfig Config :
       {ToolConfig::full(), ToolConfig::noStatic(), ToolConfig::noPeeling(),
        ToolConfig::noDominators(), ToolConfig::noCache()}) {
    Config.Seed = 7;
    PipelineResult R = runPipeline(P, Config);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    for (LocationKey Loc : R.Reports.reportedLocations())
      EXPECT_TRUE(Ref.OracleNoOwnership.count(Loc))
          << "false positive from an optimized configuration "
          << "(program seed " << GetParam() << ")";
  }
}

TEST_P(FuzzTest, EraserReportsASuperset) {
  SharedRun Run = runDetectorAndOraclesTogether(generateProgram(GetParam()),
                                                7);
  for (LocationKey Loc : Run.Detector)
    EXPECT_TRUE(Run.EraserObjects.count(Loc.object()))
        << "Eraser missed an object we report (program seed "
        << GetParam() << ")";
}

TEST_P(FuzzTest, DeterministicPerSeed) {
  Program P = generateProgram(GetParam());
  ToolConfig Config = ToolConfig::full();
  Config.Seed = 21;
  PipelineResult A = runPipeline(P, Config);
  PipelineResult B = runPipeline(P, Config);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_EQ(A.Run.InstructionsExecuted, B.Run.InstructionsExecuted);
  EXPECT_EQ(A.Reports.reportedLocations(), B.Reports.reportedLocations());
  EXPECT_EQ(A.Run.Output, B.Run.Output);
}

TEST_P(FuzzTest, InstrumentationPreservesWellFormedness) {
  for (bool Peel : {false, true}) {
    Program P = generateProgram(GetParam());
    InstrumenterOptions Opts;
    Opts.UseStaticRaceSet = false;
    Opts.StaticWeakerThan = true;
    Opts.LoopPeeling = Peel;
    instrumentProgram(P, Opts, nullptr);
    auto Problems = verifyProgram(P);
    EXPECT_TRUE(Problems.empty())
        << "seed " << GetParam() << " peel=" << Peel << ": " << Problems[0];
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, FuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
