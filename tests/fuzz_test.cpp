//===- tests/fuzz_test.cpp - Random-program property tests ----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random multithreaded MiniJ programs — shared objects, lock
/// objects, nested synchronized regions, loops, start/join — and checks
/// the system-level invariants of DESIGN.md on each:
///
///   1. with full instrumentation (no static pruning / elimination /
///      peeling), the detector's reported locations equal the exact O(N²)
///      oracle's racy locations (Definition 1 + precision);
///   2. the cache never changes the reported set;
///   3. every optimized configuration's reports are a subset of the
///      oracle's (no optimization can create a false positive);
///   4. Eraser reports a superset of our per-object reports;
///   5. runs are deterministic per seed;
///   6. instrumentation never breaks program well-formedness.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "baselines/EpochDetector.h"
#include "baselines/EraserDetector.h"
#include "baselines/NaiveDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/RaceRuntime.h"
#include "herd/Pipeline.h"
#include "instr/Instrumenter.h"
#include "instr/Superinstr.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace herd;
using fuzzprogs::generateProgram;

namespace {

/// Instruments every access, then runs once with the detector and the
/// exact oracle observing the SAME execution (ownership is
/// schedule-sensitive, so the oracle must see the very same event order).
struct SharedRun {
  std::set<LocationKey> Detector;
  std::set<LocationKey> Oracle;
  std::set<LocationKey> OracleNoOwnership;
  std::set<ObjectId> EraserObjects;
};

SharedRun runDetectorAndOraclesTogether(Program P, uint64_t Seed) {
  InstrumenterOptions IOpts;
  IOpts.UseStaticRaceSet = false;
  IOpts.StaticWeakerThan = false;
  IOpts.LoopPeeling = false;
  instrumentProgram(P, IOpts, nullptr);

  RaceRuntime RT;
  NaiveDetector Oracle;
  NaiveDetector::Options NoOwnOpts;
  NoOwnOpts.UseOwnership = false;
  NaiveDetector OracleNoOwn(NoOwnOpts);
  EraserDetector Eraser;
  FanoutHooks Fanout{&RT, &Oracle, &OracleNoOwn, &Eraser};

  InterpOptions Opts;
  Opts.Seed = Seed;
  Interpreter Interp(P, &Fanout, Opts);
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;

  SharedRun Out;
  Out.Detector = RT.reporter().reportedLocations();
  Out.Oracle = Oracle.racyLocations();
  Out.OracleNoOwnership = OracleNoOwn.racyLocations();
  for (LocationKey Loc : Eraser.reportedLocations())
    Out.EraserObjects.insert(Loc.object());
  return Out;
}

ToolConfig unoptimizedConfig(uint64_t Seed) {
  ToolConfig Config;
  Config.StaticAnalysis = false;
  Config.StaticWeakerThan = false;
  Config.LoopPeeling = false;
  Config.Seed = Seed;
  return Config;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, GeneratedProgramIsWellFormedAndTerminates) {
  Program P = generateProgram(GetParam());
  auto Problems = verifyProgram(P);
  ASSERT_TRUE(Problems.empty()) << Problems[0];
  PipelineResult R = runPipeline(P, ToolConfig::base());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
}

TEST_P(FuzzTest, UnoptimizedReportsEqualTheOracle) {
  for (uint64_t ScheduleSeed : {1u, 13u}) {
    SharedRun Run =
        runDetectorAndOraclesTogether(generateProgram(GetParam()),
                                      ScheduleSeed);
    EXPECT_EQ(Run.Detector, Run.Oracle)
        << "program seed " << GetParam() << " schedule " << ScheduleSeed;
  }
}

TEST_P(FuzzTest, CacheIsTransparent) {
  Program P = generateProgram(GetParam());
  ToolConfig WithCache = unoptimizedConfig(7);
  ToolConfig NoCache = unoptimizedConfig(7);
  NoCache.UseCache = false;
  PipelineResult A = runPipeline(P, WithCache);
  PipelineResult B = runPipeline(P, NoCache);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_EQ(A.Reports.reportedLocations(), B.Reports.reportedLocations());
}

TEST_P(FuzzTest, OptimizedConfigsNeverInventRaces) {
  // The comparison oracle disables ownership: its racy-location set is
  // then schedule-independent for these programs (per-thread event
  // sequences do not depend on shared data), so it soundly bounds every
  // configuration's reports regardless of how instrumentation perturbs
  // the schedule.  Ownership and the optimizations can only *remove*
  // events, never manufacture a conflicting pair.
  Program P = generateProgram(GetParam());
  SharedRun Ref = runDetectorAndOraclesTogether(P, 7);
  for (ToolConfig Config :
       {ToolConfig::full(), ToolConfig::noStatic(), ToolConfig::noPeeling(),
        ToolConfig::noDominators(), ToolConfig::noCache()}) {
    Config.Seed = 7;
    PipelineResult R = runPipeline(P, Config);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    for (LocationKey Loc : R.Reports.reportedLocations())
      EXPECT_TRUE(Ref.OracleNoOwnership.count(Loc))
          << "false positive from an optimized configuration "
          << "(program seed " << GetParam() << ")";
  }
}

TEST_P(FuzzTest, EraserReportsASuperset) {
  SharedRun Run = runDetectorAndOraclesTogether(generateProgram(GetParam()),
                                                7);
  for (LocationKey Loc : Run.Detector)
    EXPECT_TRUE(Run.EraserObjects.count(Loc.object()))
        << "Eraser missed an object we report (program seed "
        << GetParam() << ")";
}

TEST_P(FuzzTest, DeterministicPerSeed) {
  Program P = generateProgram(GetParam());
  ToolConfig Config = ToolConfig::full();
  Config.Seed = 21;
  PipelineResult A = runPipeline(P, Config);
  PipelineResult B = runPipeline(P, Config);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_EQ(A.Run.InstructionsExecuted, B.Run.InstructionsExecuted);
  EXPECT_EQ(A.Reports.reportedLocations(), B.Reports.reportedLocations());
  EXPECT_EQ(A.Run.Output, B.Run.Output);
}

TEST_P(FuzzTest, DispatchModesAgree) {
  // Switch vs threaded dispatch (docs/INTERPRETER.md): same reports, same
  // output, same final heap — dispatch is an implementation detail, never
  // an observable one.  The full cross-product lives in
  // dispatch_differential_test.cpp; this is the fuzz-level cross-check.
  Program P = generateProgram(GetParam());
  ToolConfig Switch = ToolConfig::full();
  Switch.Seed = 7;
  Switch.Dispatch = DispatchMode::Switch;
  ToolConfig Threaded = Switch;
  Threaded.Dispatch = DispatchMode::Threaded;
  PipelineResult A = runPipeline(P, Switch);
  PipelineResult B = runPipeline(P, Threaded);
  ASSERT_TRUE(A.Run.Ok) << A.Run.Error;
  ASSERT_TRUE(B.Run.Ok) << B.Run.Error;
  EXPECT_EQ(A.FormattedRaces, B.FormattedRaces);
  EXPECT_EQ(A.Run.Output, B.Run.Output);
  EXPECT_EQ(A.Run.InstructionsExecuted, B.Run.InstructionsExecuted);
  EXPECT_EQ(A.Run.AccessEvents, B.Run.AccessEvents);
  EXPECT_EQ(A.Run.ContextSwitches, B.Run.ContextSwitches);

  // Final heap state, compared through the raw interpreter (the pipeline
  // does not expose its heap): every object's every slot must match.
  auto FinalHeap = [&](DispatchMode Mode) {
    Program Copy = P;
    InterpOptions Opts;
    Opts.Seed = 7;
    Opts.Dispatch = Mode;
    SuperinstrOptions FuseOpts;
    ThreadedCode TC = buildThreadedCode(Copy, FuseOpts);
    Opts.Fused = Mode == DispatchMode::Threaded ? &TC : nullptr;
    Interpreter Interp(Copy, nullptr, Opts);
    InterpResult R = Interp.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    std::vector<std::vector<Value>> Slots;
    for (uint32_t Id = 0; Id != Interp.heap().size(); ++Id)
      Slots.push_back(Interp.heap().object(ObjectId(Id)).Slots);
    return Slots;
  };
  auto SwitchHeap = FinalHeap(DispatchMode::Switch);
  auto ThreadedHeap = FinalHeap(DispatchMode::Threaded);
  ASSERT_EQ(SwitchHeap.size(), ThreadedHeap.size());
  for (size_t Obj = 0; Obj != SwitchHeap.size(); ++Obj) {
    ASSERT_EQ(SwitchHeap[Obj].size(), ThreadedHeap[Obj].size()) << Obj;
    for (size_t Slot = 0; Slot != SwitchHeap[Obj].size(); ++Slot)
      EXPECT_TRUE(SwitchHeap[Obj][Slot] == ThreadedHeap[Obj][Slot])
          << "object " << Obj << " slot " << Slot;
  }
}

TEST_P(FuzzTest, EpochAndVectorClockAgreeOnSharedSchedule) {
  // The epoch backend must be race-set equivalent to the vector-clock
  // baseline on the very same event stream (docs/DETECTORS.md): both
  // detectors observe one execution through a fanout, so the comparison
  // is exact, not schedule-modulo.  Two schedule seeds per program.
  for (uint64_t ScheduleSeed : {1u, 13u}) {
    Program P = generateProgram(GetParam());
    InstrumenterOptions IOpts;
    IOpts.UseStaticRaceSet = false;
    IOpts.StaticWeakerThan = false;
    IOpts.LoopPeeling = false;
    instrumentProgram(P, IOpts, nullptr);

    EpochDetector Epoch;
    VectorClockDetector VC;
    FanoutHooks Fanout{&Epoch, &VC};
    InterpOptions Opts;
    Opts.Seed = ScheduleSeed;
    Interpreter Interp(P, &Fanout, Opts);
    InterpResult R = Interp.run();
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(Epoch.reportedLocations(), VC.reportedLocations())
        << "program seed " << GetParam() << " schedule " << ScheduleSeed;
    EXPECT_EQ(Epoch.stats().RacesReported, Epoch.reportedLocations().size());
  }
}

TEST_P(FuzzTest, InstrumentationPreservesWellFormedness) {
  for (bool Peel : {false, true}) {
    Program P = generateProgram(GetParam());
    InstrumenterOptions Opts;
    Opts.UseStaticRaceSet = false;
    Opts.StaticWeakerThan = true;
    Opts.LoopPeeling = Peel;
    instrumentProgram(P, Opts, nullptr);
    auto Problems = verifyProgram(P);
    EXPECT_TRUE(Problems.empty())
        << "seed " << GetParam() << " peel=" << Peel << ": " << Problems[0];
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, FuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
