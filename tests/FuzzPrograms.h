//===- tests/FuzzPrograms.h - Random MiniJ program generator ----*- C++ -*-==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random multithreaded MiniJ program generator shared by the fuzz
/// tests and the cross-detector differential tests.
///
//===----------------------------------------------------------------------===//

#ifndef HERD_TESTS_FUZZPROGRAMS_H
#define HERD_TESTS_FUZZPROGRAMS_H

#include "ir/IRBuilder.h"
#include "ir/Program.h"
#include "support/Rng.h"

#include <functional>
#include <string>
#include <vector>

namespace herd {
namespace fuzzprogs {

/// Generates a random, always-terminating multithreaded program.
///
/// Shape: main allocates D data objects (2 int fields each) and L lock
/// objects, wires them into 2-3 worker threads, starts all workers, joins
/// a random subset, and possibly touches data afterwards.  Each worker's
/// run() does a bounded loop of random field reads/writes, optionally
/// inside (possibly nested) synchronized regions, with occasional yields.
///
/// Only main ever joins a thread, so each dummy join lock S_j has at most
/// one holder besides thread j itself — the regime where the Section 2.3
/// join model is exact (see tests/detector_differential_test.cpp).
inline Program generateProgram(uint64_t Seed) {
  Rng R(Seed);
  Program P;
  IRBuilder B(P);

  ClassId Data = B.makeClass("Data");
  FieldId F0 = B.makeField(Data, "f0");
  FieldId F1 = B.makeField(Data, "f1");
  ClassId LockCls = B.makeClass("Lock");

  size_t NumData = 2 + R.nextBelow(3);   // 2..4
  size_t NumLocks = 1 + R.nextBelow(2);  // 1..2
  size_t NumWorkers = 2 + R.nextBelow(2); // 2..3

  ClassId Worker = B.makeClass("Worker");
  std::vector<FieldId> WData, WLocks;
  // Built with += rather than operator+: the string-concat rvalue overloads
  // trip GCC 12's -Wrestrict false positive (PR105651) under -Werror at
  // some inlining depths.
  for (size_t I = 0; I != NumData; ++I) {
    std::string Name = "d";
    Name += std::to_string(I);
    WData.push_back(B.makeField(Worker, Name));
  }
  for (size_t I = 0; I != NumLocks; ++I) {
    std::string Name = "l";
    Name += std::to_string(I);
    WLocks.push_back(B.makeField(Worker, Name));
  }

  // Worker.run: random accesses under random (possibly nested) locking.
  B.startMethod(Worker, "run", 1);
  {
    RegId This = B.thisReg();
    std::vector<RegId> DataRegs, LockRegs;
    for (FieldId F : WData)
      DataRegs.push_back(B.emitGetField(This, F));
    for (FieldId F : WLocks)
      LockRegs.push_back(B.emitGetField(This, F));

    // One random access.
    auto EmitAccess = [&] {
      RegId Obj = DataRegs[R.nextBelow(DataRegs.size())];
      FieldId F = R.nextChance(1, 2) ? F0 : F1;
      if (R.nextChance(1, 2)) {
        RegId Cur = B.emitGetField(Obj, F);
        B.emitPutField(Obj, F,
                       B.emitBinOp(BinOpKind::Add, Cur, B.emitConst(1)));
      } else {
        B.emitPrint(B.emitGetField(Obj, F));
      }
    };

    // A run of 1-3 accesses, possibly wrapped in nested sync regions.
    // Nested acquisitions respect the global lock order (ascending index):
    // generated programs must never truly deadlock, or termination tests
    // become schedule lotteries.  (Deadlock *detection* has its own
    // dedicated tests with deliberately inverted orders.)
    std::function<void(size_t)> EmitGroup = [&](size_t MinLock) {
      if (MinLock < LockRegs.size() && R.nextChance(1, 2)) {
        size_t Pick = MinLock + R.nextBelow(LockRegs.size() - MinLock);
        B.sync(LockRegs[Pick], [&] { EmitGroup(Pick + 1); });
        return;
      }
      size_t Count = 1 + R.nextBelow(3);
      for (size_t I = 0; I != Count; ++I)
        EmitAccess();
      if (R.nextChance(1, 3))
        B.emitYield();
    };

    RegId Iters = B.emitConst(int64_t(2 + R.nextBelow(5)));
    B.forLoop(0, Iters, 1, [&](RegId) {
      size_t Groups = 1 + R.nextBelow(3);
      for (size_t I = 0; I != Groups; ++I)
        EmitGroup(0);
    });
    B.emitReturn();
  }

  // main.
  B.startMain();
  std::vector<RegId> DataObjs, LockObjs;
  for (size_t I = 0; I != NumData; ++I) {
    RegId Obj = B.emitNew(Data);
    // Random initialization (ownership will absorb these).
    if (R.nextChance(2, 3))
      B.emitPutField(Obj, F0, B.emitConst(int64_t(R.nextBelow(100))));
    DataObjs.push_back(Obj);
  }
  for (size_t I = 0; I != NumLocks; ++I)
    LockObjs.push_back(B.emitNew(LockCls));

  std::vector<RegId> Workers;
  for (size_t W = 0; W != NumWorkers; ++W) {
    RegId Wk = B.emitNew(Worker);
    for (size_t I = 0; I != NumData; ++I)
      B.emitPutField(Wk, WData[I], DataObjs[R.nextBelow(DataObjs.size())]);
    for (size_t I = 0; I != NumLocks; ++I)
      B.emitPutField(Wk, WLocks[I], LockObjs[R.nextBelow(LockObjs.size())]);
    Workers.push_back(Wk);
  }
  for (RegId Wk : Workers)
    B.emitThreadStart(Wk);
  // Join a random subset (possibly none, possibly all).
  for (RegId Wk : Workers)
    if (R.nextChance(2, 3))
      B.emitThreadJoin(Wk);
  // Sometimes touch shared data afterwards (races with unjoined workers).
  if (R.nextChance(1, 2))
    B.emitPrint(B.emitGetField(DataObjs[0], F0));
  B.emitReturn();
  return P;
}

} // namespace fuzzprogs
} // namespace herd

#endif // HERD_TESTS_FUZZPROGRAMS_H
