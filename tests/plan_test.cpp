//===- tests/plan_test.cpp - DetectorPlan correctness and equivalence -----==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DetectorPlan layer's regression net.  Three concerns:
///
///  * Equivalence — a plan pre-sizes memory, it must never change what is
///    reported.  `--plan=off` vs `--plan=auto` vs `--plan=N` must produce
///    byte-identical formatted race reports across serial/sharded and
///    live/replay on the hand-written test programs, the fuzz corpus and
///    the benchmark replicas.
///
///  * Reserve arithmetic — FlatTable::capacityFor / Arena::chunksFor and
///    their reserve() counterparts at the edges (zero, load-factor
///    boundaries, saturation at SIZE_MAX).
///
///  * Plan arithmetic — clamped() caps, sized(), forShard() slicing.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "analysis/DetectorPlanner.h"
#include "herd/Pipeline.h"
#include "support/Arena.h"
#include "support/FlatTable.h"
#include "workloads/Workloads.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace herd;
using fuzzprogs::generateProgram;
using testprogs::buildFigure2;

namespace {

//===----------------------------------------------------------------------===
// Equivalence: plans never change reports
//===----------------------------------------------------------------------===

/// Runs \p P live under \p Config with every plan mode and expects
/// byte-identical formatted race reports; returns the plan=off reports.
std::vector<std::string> expectPlanInvariantLive(const Program &P,
                                                 ToolConfig Config) {
  Config.Plan = ToolConfig::PlanMode::Off;
  PipelineResult Off = runPipeline(P, Config);
  EXPECT_TRUE(Off.Run.Ok) << Off.Run.Error;

  Config.Plan = ToolConfig::PlanMode::Auto;
  PipelineResult Auto = runPipeline(P, Config);
  EXPECT_TRUE(Auto.Run.Ok) << Auto.Run.Error;
  EXPECT_EQ(Off.FormattedRaces, Auto.FormattedRaces);

  Config.Plan = ToolConfig::PlanMode::Explicit;
  Config.PlanLocations = 512;
  PipelineResult Explicit = runPipeline(P, Config);
  EXPECT_TRUE(Explicit.Run.Ok) << Explicit.Run.Error;
  EXPECT_EQ(Off.FormattedRaces, Explicit.FormattedRaces);
  return Off.FormattedRaces;
}

TEST(PlanEquivalence, HandWrittenProgramsSerialAndSharded) {
  for (bool SamePQ : {true, false}) {
    Program P = buildFigure2(SamePQ);
    for (uint32_t Shards : {0u, 3u}) {
      SCOPED_TRACE(std::string(SamePQ ? "samePQ" : "distinctPQ") + "/" +
                   std::to_string(Shards) + " shards");
      ToolConfig Config = ToolConfig::full();
      Config.Shards = Shards;
      expectPlanInvariantLive(P, Config);
    }
  }
}

TEST(PlanEquivalence, FuzzCorpusSerialAndSharded) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Program P = generateProgram(Seed);
    for (uint32_t Shards : {0u, 2u}) {
      SCOPED_TRACE("seed " + std::to_string(Seed) + "/" +
                   std::to_string(Shards) + " shards");
      ToolConfig Config = ToolConfig::full();
      Config.Shards = Shards;
      Config.Seed = Seed;
      expectPlanInvariantLive(P, Config);
    }
  }
}

TEST(PlanEquivalence, WorkloadReplicas) {
  for (Workload &W : buildAllWorkloads(1)) {
    SCOPED_TRACE(W.Name);
    ToolConfig Config = ToolConfig::full();
    std::vector<std::string> Races = expectPlanInvariantLive(W.P, Config);
    // The replicas' expected racy-object counts double-check that the
    // planned runs still report the full result set, not a truncation.
    (void)Races;
  }
}

TEST(PlanEquivalence, ReplayHonorsExplicitPlan) {
  // Record once (plan=auto live), then replay with plan off and with an
  // explicit plan: identical reports.  Replay has no analysis results, so
  // Auto degrades to no plan there — also checked.
  Program P = buildFigure2(/*SamePQ=*/true);
  std::string Path = "/tmp/herd_plan_test.trace";
  ToolConfig Config = ToolConfig::full();
  Config.RecordTracePath = Path;
  PipelineResult Live = runPipeline(P, Config);
  ASSERT_TRUE(Live.Run.Ok) << Live.Run.Error;
  ASSERT_TRUE(Live.Trace.Ok) << Live.Trace.Error;
  Config.RecordTracePath.clear();

  for (uint32_t Shards : {0u, 2u}) {
    SCOPED_TRACE(std::to_string(Shards) + " shards");
    Config.Shards = Shards;
    Config.Plan = ToolConfig::PlanMode::Off;
    PipelineResult Off = replayTracePipeline(P, Config, Path);
    ASSERT_TRUE(Off.Run.Ok) << Off.Run.Error;
    // Replay formats objects without class names (the trace does not carry
    // allocation classes), so compare counts against live and bytes only
    // among replays.
    EXPECT_EQ(Off.FormattedRaces.size(), Live.FormattedRaces.size());

    Config.Plan = ToolConfig::PlanMode::Auto;
    PipelineResult Auto = replayTracePipeline(P, Config, Path);
    ASSERT_TRUE(Auto.Run.Ok) << Auto.Run.Error;
    EXPECT_EQ(Auto.FormattedRaces, Off.FormattedRaces);

    Config.Plan = ToolConfig::PlanMode::Explicit;
    Config.PlanLocations = 4096;
    PipelineResult Explicit = replayTracePipeline(P, Config, Path);
    ASSERT_TRUE(Explicit.Run.Ok) << Explicit.Run.Error;
    EXPECT_EQ(Explicit.FormattedRaces, Off.FormattedRaces);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===
// FlatTable reserve arithmetic
//===----------------------------------------------------------------------===

using TestTable = LocationTable<uint32_t>;

TEST(FlatTableReserve, CapacityForEdges) {
  // Minimum table is 64 slots; grow keeps load <= 3/4.
  EXPECT_EQ(TestTable::capacityFor(0), 64u);
  EXPECT_EQ(TestTable::capacityFor(1), 64u);
  EXPECT_EQ(TestTable::capacityFor(48), 64u);  // 64 * 3/4 == 48 fits
  EXPECT_EQ(TestTable::capacityFor(49), 128u); // one past the boundary
  EXPECT_EQ(TestTable::capacityFor(96), 128u);
  EXPECT_EQ(TestTable::capacityFor(97), 256u);
  // Saturation: absurd requests return the largest power of two instead
  // of looping forever or overflowing.
  const size_t MaxPow2 = ~(~size_t(0) >> 1);
  EXPECT_EQ(TestTable::capacityFor(SIZE_MAX), MaxPow2);
  EXPECT_EQ(TestTable::capacityFor(MaxPow2), MaxPow2);
}

TEST(FlatTableReserve, ReserveThenFillDoesNotLoseEntries) {
  TestTable T;
  T.reserve(1000); // 2048 slots: 1000 <= 3/4 * 2048
  for (uint32_t I = 0; I != 1000; ++I) {
    LocationKey K = LocationKey::forField(ObjectId(I), FieldId(I % 7));
    *T.tryEmplace(K).first = I;
  }
  for (uint32_t I = 0; I != 1000; ++I) {
    LocationKey K = LocationKey::forField(ObjectId(I), FieldId(I % 7));
    uint32_t *V = T.find(K);
    ASSERT_NE(V, nullptr) << I;
    EXPECT_EQ(*V, I);
  }
}

TEST(FlatTableReserve, ReserveAfterInsertRehashesExisting) {
  TestTable T;
  for (uint32_t I = 0; I != 10; ++I)
    *T.tryEmplace(LocationKey::forField(ObjectId(I), FieldId(0))).first = I;
  T.reserve(5000);
  for (uint32_t I = 0; I != 10; ++I) {
    uint32_t *V = T.find(LocationKey::forField(ObjectId(I), FieldId(0)));
    ASSERT_NE(V, nullptr);
    EXPECT_EQ(*V, I);
  }
  // Shrinking reserve is a no-op, never a rehash down.
  T.reserve(0);
  EXPECT_NE(T.find(LocationKey::forField(ObjectId(3), FieldId(0))),
            nullptr);
}

//===----------------------------------------------------------------------===
// Arena / TrieEdgePool reserve arithmetic
//===----------------------------------------------------------------------===

TEST(ArenaReserve, ChunksForEdges) {
  using A = Arena<uint64_t>;
  EXPECT_EQ(A::chunksFor(0), 0u);
  EXPECT_EQ(A::chunksFor(1), 1u);
  EXPECT_EQ(A::chunksFor(4096), 1u);
  EXPECT_EQ(A::chunksFor(4097), 2u);
  // The index space tops out at 0xFFFFFFFE slots; requests beyond clamp
  // instead of overflowing the chunk math.
  EXPECT_EQ(A::chunksFor(SIZE_MAX), (size_t(0xFFFFFFFE) + 4095) / 4096);
}

TEST(ArenaReserve, ReserveIsUsableAndIdempotent) {
  Arena<uint64_t> A;
  A.reserve(10000);
  size_t Reserved = A.reservedSlots();
  EXPECT_GE(Reserved, 10000u);
  A.reserve(100); // shrink request: no-op
  EXPECT_EQ(A.reservedSlots(), Reserved);
  // Allocations land inside the reserved chunks and slots are default
  // initialized even though the chunk was created before first use.
  for (uint32_t I = 0; I != 10000; ++I) {
    uint32_t Idx = A.allocate();
    EXPECT_EQ(A[Idx], 0u);
    A[Idx] = I + 1;
  }
  EXPECT_EQ(A.reservedSlots(), Reserved);
  A.reserve(0);
  EXPECT_EQ(A.reservedSlots(), Reserved);
}

TEST(TrieEdgePoolReserve, ReserveCoversSubsequentBlocks) {
  TrieEdgePool Pool;
  Pool.reserveEdges(20000);
  size_t Reserved = Pool.reservedEdges();
  EXPECT_GE(Reserved, 20000u);
  // Carving blocks out of the pre-reserved chunks adds nothing: 2000
  // blocks of 2^3 = 8 edges fit in the reserved 20000+.
  std::vector<uint32_t> Blocks;
  for (int I = 0; I != 2000; ++I)
    Blocks.push_back(Pool.allocate(3));
  EXPECT_EQ(Pool.reservedEdges(), Reserved);
  // Blocks are writable and distinct.
  Pool.at(Blocks[0])[0].Label = LockId(7);
  Pool.at(Blocks[1999])[7].Label = LockId(9);
  EXPECT_EQ(Pool.at(Blocks[0])[0].Label, LockId(7));
  // Note: reserveEdges clamps to the 31-bit edge address space but will
  // happily materialize gigabytes for a near-limit request — callers go
  // through DetectorPlan::clamped() (<= 2^24 edges), which
  // DetectorPlanTest.ClampedCapsHostileValues pins.
}

//===----------------------------------------------------------------------===
// DetectorPlan arithmetic
//===----------------------------------------------------------------------===

TEST(DetectorPlanTest, EmptyAndSized) {
  DetectorPlan P;
  EXPECT_TRUE(P.empty());
  DetectorPlan S = DetectorPlan::sized(100);
  EXPECT_FALSE(S.empty());
  EXPECT_EQ(S.ExpectedLocations, 100u);
  EXPECT_EQ(S.ExpectedSharedLocations, 100u);
  EXPECT_EQ(S.ExpectedTrieNodes, 200u);
  EXPECT_EQ(S.ExpectedTrieEdges, 200u);
  EXPECT_EQ(DetectorPlan::sized(0).ExpectedLocations, 0u);
}

TEST(DetectorPlanTest, ClampedCapsHostileValues) {
  DetectorPlan P;
  P.ExpectedLocations = ~uint64_t(0);
  P.ExpectedSharedLocations = ~uint64_t(0);
  P.ExpectedTrieNodes = ~uint64_t(0);
  P.ExpectedTrieEdges = ~uint64_t(0);
  P.ExpectedThreads = ~uint64_t(0);
  P.ExpectedLocksets = ~uint64_t(0);
  DetectorPlan C = P.clamped();
  EXPECT_EQ(C.ExpectedLocations, uint64_t(1) << 22);
  EXPECT_LE(C.ExpectedSharedLocations, C.ExpectedLocations);
  EXPECT_EQ(C.ExpectedTrieNodes, uint64_t(1) << 24);
  EXPECT_EQ(C.ExpectedThreads, 4096u);
  EXPECT_EQ(C.ExpectedLocksets, uint64_t(1) << 20);
  // sized() goes through clamped() already.
  EXPECT_EQ(DetectorPlan::sized(~uint64_t(0)).ExpectedLocations,
            uint64_t(1) << 22);
}

TEST(DetectorPlanTest, ForShardSlicesWithHeadroom) {
  DetectorPlan P = DetectorPlan::sized(1000);
  P.ExpectedThreads = 7;
  P.ExpectedLocksets = 99;
  DetectorPlan S = P.forShard(0, 4);
  // 5/4 headroom per shard: 4 shards jointly over-cover the total.
  EXPECT_GE(S.ExpectedLocations * 4, P.ExpectedLocations);
  EXPECT_LE(S.ExpectedLocations, P.ExpectedLocations);
  EXPECT_EQ(S.ExpectedThreads, 7u); // threads are global, not sliced
  // Interner-scoped fields are pool-level, not per shard.
  EXPECT_EQ(S.ExpectedLocksets, 0u);
  EXPECT_TRUE(S.PreinternLocksets.empty());
  // Degenerate shard counts.
  EXPECT_TRUE(P.forShard(0, 0).empty());
  DetectorPlan One = P.forShard(0, 1);
  EXPECT_GE(One.ExpectedLocations, P.ExpectedLocations);
}

//===----------------------------------------------------------------------===
// Lockset-depth heuristic: deep must-sync nesting widens the trie budget
//===----------------------------------------------------------------------===

TEST(PlannerDepthTest, TrieNodesPerLocationCurve) {
  // 2^(depth+1) — the +1 is the per-thread dummy join lock — clamped to
  // [TrieNodesPerLocation=2, MaxTrieNodesPerLocation=64].
  EXPECT_EQ(trieNodesPerLocationForDepth(0), 2u);
  EXPECT_EQ(trieNodesPerLocationForDepth(1), 4u);
  EXPECT_EQ(trieNodesPerLocationForDepth(2), 8u);
  EXPECT_EQ(trieNodesPerLocationForDepth(3), 16u);
  EXPECT_EQ(trieNodesPerLocationForDepth(4), 32u);
  EXPECT_EQ(trieNodesPerLocationForDepth(5), 64u);
  EXPECT_EQ(trieNodesPerLocationForDepth(6), 64u);
  EXPECT_EQ(trieNodesPerLocationForDepth(100), 64u);
  EXPECT_EQ(trieNodesPerLocationForDepth(UINT64_MAX), 64u); // no overflow
  // The clamp ends are tunable.
  DetectorPlannerOptions Wide;
  Wide.TrieNodesPerLocation = 16;
  Wide.MaxTrieNodesPerLocation = 1 << 10;
  EXPECT_EQ(trieNodesPerLocationForDepth(0, Wide), 16u);
  EXPECT_EQ(trieNodesPerLocationForDepth(8, Wide), 512u);
  EXPECT_EQ(trieNodesPerLocationForDepth(20, Wide), 1u << 10);
}

/// Two workers race on Shared.count; the first wraps its access in
/// \p Depth nested synchronized blocks (each on a distinct single-instance
/// lock object), the second accesses bare — so the pair survives the
/// common-sync filter while the deepest must-held lockset over the race
/// set is exactly \p Depth.
Program buildNestedSyncRace(uint64_t Depth) {
  Program P;
  IRBuilder B(P);
  ClassId Shared = B.makeClass("Shared");
  FieldId Count = B.makeField(Shared, "count");
  ClassId LockCls = B.makeClass("LockObj");

  ClassId Deep = B.makeClass("DeepWorker");
  FieldId DeepTarget = B.makeField(Deep, "target");
  std::vector<FieldId> LockFields;
  for (uint64_t I = 0; I != Depth; ++I)
    LockFields.push_back(
        B.makeField(Deep, ("lock" + std::to_string(I)).c_str()));
  B.startMethod(Deep, "run", 1);
  {
    RegId Obj = B.emitGetField(B.thisReg(), DeepTarget);
    std::function<void(uint64_t)> Nest = [&](uint64_t I) {
      if (I == Depth) {
        B.site("DEEP");
        RegId Cur = B.emitGetField(Obj, Count);
        RegId One = B.emitConst(1);
        B.emitPutField(Obj, Count,
                       B.emitBinOp(BinOpKind::Add, Cur, One));
        return;
      }
      RegId L = B.emitGetField(B.thisReg(), LockFields[I]);
      B.sync(L, [&] { Nest(I + 1); });
    };
    Nest(0);
    B.emitReturn();
  }

  ClassId Bare = B.makeClass("BareWorker");
  FieldId BareTarget = B.makeField(Bare, "target");
  B.startMethod(Bare, "run", 1);
  {
    RegId Obj = B.emitGetField(B.thisReg(), BareTarget);
    B.site("BARE");
    B.emitPutField(Obj, Count, B.emitConst(5));
    B.emitReturn();
  }

  B.startMain();
  RegId SharedObj = B.emitNew(Shared);
  RegId W1 = B.emitNew(Deep);
  RegId W2 = B.emitNew(Bare);
  B.emitPutField(W1, DeepTarget, SharedObj);
  B.emitPutField(W2, BareTarget, SharedObj);
  for (uint64_t I = 0; I != Depth; ++I)
    B.emitPutField(W1, LockFields[I], B.emitNew(LockCls));
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitThreadJoin(W1);
  B.emitThreadJoin(W2);
  B.emitReturn();
  return P;
}

TEST(PlannerDepthTest, NestedSyncScalesPlannedTrieBudget) {
  // End to end through SyncAnalysis: the per-location trie budget the
  // planner charges must follow the program's deepest must-held lockset.
  for (uint64_t Depth : {0ull, 1ull, 2ull, 3ull}) {
    SCOPED_TRACE("depth " + std::to_string(Depth));
    Program P = buildNestedSyncRace(Depth);
    StaticRaceAnalysis SRA(P);
    SRA.run();
    ASSERT_GT(SRA.raceSet().size(), 0u);
    DetectorPlan Plan = planDetector(P, SRA);
    ASSERT_GT(Plan.ExpectedSharedLocations, 0u);
    EXPECT_EQ(Plan.ExpectedTrieNodes,
              Plan.ExpectedSharedLocations *
                  trieNodesPerLocationForDepth(Depth));
    EXPECT_EQ(Plan.ExpectedTrieEdges, Plan.ExpectedTrieNodes);
  }
  // And a deep-lockset program really does get the 64-node ceiling.
  Program P = buildNestedSyncRace(6);
  StaticRaceAnalysis SRA(P);
  SRA.run();
  DetectorPlan Plan = planDetector(P, SRA);
  ASSERT_GT(Plan.ExpectedSharedLocations, 0u);
  EXPECT_EQ(Plan.ExpectedTrieNodes, Plan.ExpectedSharedLocations * 64);
}

TEST(PlannerDepthTest, DeepNestingStillReportsIdentically) {
  // The wider budget is a hint: plans must not change reports.
  Program P = buildNestedSyncRace(4);
  ToolConfig Config = ToolConfig::full();
  expectPlanInvariantLive(P, Config);
}

//===----------------------------------------------------------------------===
// Plan application: pre-sizing is observable, reports unchanged
//===----------------------------------------------------------------------===

TEST(PlanApplication, RuntimeHonorsPlanWithoutChangingStats) {
  // Same trace-free live run twice, with and without a generous plan: the
  // detector counters (events, races, nodes) must match exactly.
  Program P = buildFigure2(/*SamePQ=*/true);
  ToolConfig Config = ToolConfig::full();
  Config.Plan = ToolConfig::PlanMode::Off;
  PipelineResult Off = runPipeline(P, Config);
  Config.Plan = ToolConfig::PlanMode::Explicit;
  Config.PlanLocations = 1 << 14;
  PipelineResult On = runPipeline(P, Config);
  ASSERT_TRUE(Off.Run.Ok && On.Run.Ok);
  EXPECT_EQ(Off.Stats.EventsSeen, On.Stats.EventsSeen);
  EXPECT_EQ(Off.Stats.Detector.EventsIn, On.Stats.Detector.EventsIn);
  EXPECT_EQ(Off.Stats.Detector.RacesReported,
            On.Stats.Detector.RacesReported);
  EXPECT_EQ(Off.Stats.Detector.TrieNodes, On.Stats.Detector.TrieNodes);
}

} // namespace
