//===- tests/corpus_test.cpp - Replay differential over the trace corpus --==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the checked-in compressed trace corpus (tests/corpus/, see its
/// README.md) through the serial and sharded runtimes and checks that all
/// of them report exactly the racy locations the MANIFEST recorded.  The
/// corpus traces are bigger than anything the in-process tests execute, so
/// this is the regression net for the replay path, the RLE codec, and
/// serial/sharded equivalence at scale.
///
//===----------------------------------------------------------------------===//

#include "baselines/EpochDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "detect/TraceFile.h"
#include "support/ByteRle.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace herd;

namespace {

struct CorpusEntry {
  std::string File;
  std::string Workload;
  uint32_t Scale = 0;
  uint64_t Records = 0;
  uint64_t RawBytes = 0;
  uint64_t CompressedBytes = 0;
  uint64_t RacyLocations = 0;
};

std::vector<CorpusEntry> readManifest() {
  std::vector<CorpusEntry> Entries;
  std::ifstream In(std::string(HERD_CORPUS_DIR) + "/MANIFEST");
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::istringstream S(Line);
    CorpusEntry E;
    S >> E.File >> E.Workload >> E.Scale >> E.Records >> E.RawBytes >>
        E.CompressedBytes >> E.RacyLocations;
    if (!S.fail())
      Entries.push_back(std::move(E));
  }
  return Entries;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  std::fseek(F, 0, SEEK_END);
  long Size = std::ftell(F);
  std::fseek(F, 0, SEEK_SET);
  Out.resize(Size > 0 ? size_t(Size) : 0);
  size_t Read = Out.empty() ? 0 : std::fread(Out.data(), 1, Out.size(), F);
  std::fclose(F);
  return Read == Out.size();
}

/// Decompresses one corpus entry to a temp trace file; returns its path.
std::string inflateToTemp(const CorpusEntry &E) {
  std::vector<uint8_t> Packed;
  EXPECT_TRUE(
      readFile(std::string(HERD_CORPUS_DIR) + "/" + E.File, Packed))
      << E.File;
  EXPECT_EQ(Packed.size(), E.CompressedBytes) << E.File;
  std::vector<uint8_t> Raw;
  EXPECT_TRUE(rleDecompress(Packed, Raw)) << E.File;
  EXPECT_EQ(Raw.size(), E.RawBytes) << E.File;
  std::string Path = "/tmp/herd_corpus_test_" + E.Workload + ".trace";
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  EXPECT_NE(F, nullptr);
  if (F) {
    EXPECT_EQ(std::fwrite(Raw.data(), 1, Raw.size(), F), Raw.size());
    std::fclose(F);
  }
  return Path;
}

/// Replays \p Path into \p Sink; returns false on any trace error.
bool replay(const std::string &Path, RuntimeHooks &Sink) {
  TraceReader Reader;
  if (TraceResult TR = Reader.open(Path); !TR.Ok) {
    ADD_FAILURE() << Path << ": " << TR.Error;
    return false;
  }
  if (TraceResult TR = Reader.replayInto(Sink); !TR.Ok) {
    ADD_FAILURE() << Path << ": " << TR.Error;
    return false;
  }
  return true;
}

TEST(TraceCorpus, ManifestPresent) {
  std::vector<CorpusEntry> Entries = readManifest();
  ASSERT_EQ(Entries.size(), 5u)
      << "tests/corpus/MANIFEST should list the five replicas "
         "(regenerate with tools/herd_corpus)";
}

TEST(TraceCorpus, SerialAndShardedAgreeWithManifest) {
  for (const CorpusEntry &E : readManifest()) {
    SCOPED_TRACE(E.Workload);
    std::string Path = inflateToTemp(E);

    RaceRuntime Serial;
    ASSERT_TRUE(replay(Path, Serial));
    Serial.onRunEnd();
    auto SerialRacy = Serial.reporter().reportedLocations();
    EXPECT_EQ(SerialRacy.size(), E.RacyLocations);

    for (uint32_t Shards : {2u, 3u}) {
      ShardedRuntimeOptions SOpts;
      SOpts.NumShards = Shards;
      ShardedRuntime Sharded(SOpts);
      ASSERT_TRUE(replay(Path, Sharded));
      Sharded.onRunEnd();
      EXPECT_EQ(Sharded.reporter().reportedLocations(), SerialRacy)
          << Shards << " shards";
    }
    std::remove(Path.c_str());
  }
}

TEST(TraceCorpus, EpochAndVectorClockAgreeAtScale) {
  // The epoch backend must be race-set equivalent to the vector-clock
  // happens-before baseline on every corpus trace (docs/DETECTORS.md);
  // this is the at-scale leg of the differential that baselines_test.cpp
  // and fuzz_test.cpp pin on small traces.
  for (const CorpusEntry &E : readManifest()) {
    SCOPED_TRACE(E.Workload);
    std::string Path = inflateToTemp(E);

    VectorClockDetector VC;
    ASSERT_TRUE(replay(Path, VC));
    EpochDetector Epoch;
    ASSERT_TRUE(replay(Path, Epoch));
    EXPECT_EQ(Epoch.reportedLocations(), VC.reportedLocations());

    // The epoch fast paths must actually engage on real traces.
    EpochStats S = Epoch.stats();
    EXPECT_EQ(S.Events, S.Reads + S.Writes);
    EXPECT_GT(S.SameEpochReads + S.SameEpochWrites, 0u);
    std::remove(Path.c_str());
  }
}

TEST(TraceCorpus, RleRoundTripsArbitraryBytes) {
  // Codec unit check alongside the corpus use: adversarial patterns —
  // long runs, alternations, runs crossing the 129 cap, empty input.
  std::vector<std::vector<uint8_t>> Cases;
  Cases.push_back({});
  Cases.push_back({7});
  Cases.push_back(std::vector<uint8_t>(1000, 0));
  Cases.push_back(std::vector<uint8_t>(129, 42));
  Cases.push_back(std::vector<uint8_t>(130, 42));
  {
    std::vector<uint8_t> Alt;
    for (int I = 0; I != 500; ++I)
      Alt.push_back(uint8_t(I & 1 ? 0xAA : 0x55));
    Cases.push_back(std::move(Alt));
    std::vector<uint8_t> Mixed;
    uint32_t X = 123456789;
    for (int I = 0; I != 4096; ++I) {
      X = X * 1664525 + 1013904223;
      // Bursty: stretches of zeros between random bytes, like trace records.
      Mixed.insert(Mixed.end(), (X >> 28) + 1, 0);
      Mixed.push_back(uint8_t(X >> 16));
    }
    Cases.push_back(std::move(Mixed));
  }
  for (const std::vector<uint8_t> &In : Cases) {
    std::vector<uint8_t> Out;
    ASSERT_TRUE(rleDecompress(rleCompress(In), Out));
    EXPECT_EQ(Out, In);
  }
  // Truncated streams must be rejected, not crash.
  std::vector<uint8_t> Bad1 = {5, 1, 2};        // literal promises 6 bytes
  std::vector<uint8_t> Bad2 = {200};            // repeat missing its byte
  std::vector<uint8_t> Out;
  EXPECT_FALSE(rleDecompress(Bad1, Out));
  EXPECT_FALSE(rleDecompress(Bad2, Out));
}

} // namespace
