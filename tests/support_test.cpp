//===- tests/support_test.cpp - Support-library unit tests ----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Ids.h"
#include "support/Rng.h"
#include "support/SortedIdSet.h"
#include "support/StringInterner.h"

#include <gtest/gtest.h>

#include <set>

using namespace herd;

namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  ThreadId T;
  EXPECT_FALSE(T.isValid());
  EXPECT_EQ(T, ThreadId::invalid());
}

TEST(StrongIdTest, EqualityAndOrdering) {
  LockId A(1), B(2), C(1);
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_LT(A, B);
}

TEST(LocationKeyTest, FieldKeysDistinguishObjectsAndFields) {
  LocationKey K1 = LocationKey::forField(ObjectId(3), FieldId(0));
  LocationKey K2 = LocationKey::forField(ObjectId(3), FieldId(1));
  LocationKey K3 = LocationKey::forField(ObjectId(4), FieldId(0));
  EXPECT_NE(K1, K2);
  EXPECT_NE(K1, K3);
  EXPECT_EQ(K1.object(), ObjectId(3));
  EXPECT_EQ(K3.object(), ObjectId(4));
}

TEST(LocationKeyTest, ArrayElementsShareOneLocation) {
  // "We associate only one memory location with all elements of a given
  // array" (Section 2.1, footnote 1).
  LocationKey A = LocationKey::forArray(ObjectId(7));
  LocationKey B = LocationKey::forArray(ObjectId(7));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, LocationKey::forArray(ObjectId(8)));
}

TEST(LocationKeyTest, FieldsMergedCollapsesFieldsNotObjects) {
  LocationKey K1 = LocationKey::forField(ObjectId(3), FieldId(0));
  LocationKey K2 = LocationKey::forField(ObjectId(3), FieldId(9));
  LocationKey K3 = LocationKey::forField(ObjectId(4), FieldId(0));
  EXPECT_EQ(K1.withFieldsMerged(), K2.withFieldsMerged());
  EXPECT_NE(K1.withFieldsMerged(), K3.withFieldsMerged());
  // Idempotent: merging twice changes nothing.
  EXPECT_EQ(K1.withFieldsMerged(),
            K1.withFieldsMerged().withFieldsMerged());
  // Merged keys keep the object identity (Table 3 counts objects).
  EXPECT_EQ(K1.withFieldsMerged().object(), ObjectId(3));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  bool Different = false;
  for (int I = 0; I != 16 && !Different; ++I)
    Different = A.next() != B.next();
  EXPECT_TRUE(Different);
}

TEST(RngTest, BoundedValuesStayInRange) {
  Rng R(7);
  for (int I = 0; I != 1000; ++I) {
    EXPECT_LT(R.nextBelow(10), 10u);
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(RngTest, RoughlyUniformOverSmallBound) {
  Rng R(99);
  int Counts[4] = {0, 0, 0, 0};
  for (int I = 0; I != 4000; ++I)
    ++Counts[R.nextBelow(4)];
  for (int C : Counts) {
    EXPECT_GT(C, 800);
    EXPECT_LT(C, 1200);
  }
}

TEST(SortedIdSetTest, InsertEraseContains) {
  SortedIdSet<LockId> S;
  EXPECT_TRUE(S.empty());
  EXPECT_TRUE(S.insert(LockId(5)));
  EXPECT_TRUE(S.insert(LockId(2)));
  EXPECT_FALSE(S.insert(LockId(5)));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_TRUE(S.contains(LockId(2)));
  EXPECT_FALSE(S.contains(LockId(3)));
  EXPECT_TRUE(S.erase(LockId(2)));
  EXPECT_FALSE(S.erase(LockId(2)));
  EXPECT_EQ(S.size(), 1u);
}

TEST(SortedIdSetTest, IterationIsSorted) {
  SortedIdSet<LockId> S = {LockId(9), LockId(1), LockId(4)};
  std::vector<uint32_t> Seen;
  for (LockId L : S)
    Seen.push_back(L.index());
  EXPECT_EQ(Seen, (std::vector<uint32_t>{1, 4, 9}));
}

TEST(SortedIdSetTest, SubsetAndIntersects) {
  SortedIdSet<LockId> A = {LockId(1), LockId(3)};
  SortedIdSet<LockId> B = {LockId(1), LockId(2), LockId(3)};
  SortedIdSet<LockId> C = {LockId(4)};
  SortedIdSet<LockId> Empty;
  EXPECT_TRUE(A.isSubsetOf(B));
  EXPECT_FALSE(B.isSubsetOf(A));
  EXPECT_TRUE(Empty.isSubsetOf(A));
  EXPECT_TRUE(Empty.isSubsetOf(Empty));
  EXPECT_TRUE(A.intersects(B));
  EXPECT_FALSE(A.intersects(C));
  EXPECT_FALSE(A.intersects(Empty));
}

TEST(SortedIdSetTest, UnionAndIntersection) {
  SortedIdSet<LockId> A = {LockId(1), LockId(3)};
  SortedIdSet<LockId> B = {LockId(3), LockId(5)};
  SortedIdSet<LockId> U = A;
  EXPECT_TRUE(U.unionWith(B));
  EXPECT_EQ(U, (SortedIdSet<LockId>{LockId(1), LockId(3), LockId(5)}));
  EXPECT_FALSE(U.unionWith(B)); // no growth the second time
  SortedIdSet<LockId> I = A;
  EXPECT_TRUE(I.intersectWith(B));
  EXPECT_EQ(I, (SortedIdSet<LockId>{LockId(3)}));
  EXPECT_FALSE(I.intersectWith(B));
}

TEST(StringInternerTest, InterningIsStable) {
  StringInterner Interner;
  Symbol A = Interner.intern("foo");
  Symbol B = Interner.intern("bar");
  Symbol C = Interner.intern("foo");
  EXPECT_EQ(A, C);
  EXPECT_NE(A, B);
  EXPECT_EQ(Interner.text(A), "foo");
  EXPECT_EQ(Interner.text(B), "bar");
}

TEST(StringInternerTest, EmptyStringIsSymbolZero) {
  StringInterner Interner;
  Symbol E = Interner.intern("");
  EXPECT_TRUE(E.isEmpty());
  EXPECT_EQ(Interner.text(E), "");
}

TEST(LocationKeyTest, HashSpreadsKeys) {
  std::set<size_t> Hashes;
  std::hash<LocationKey> H;
  for (uint32_t Obj = 0; Obj != 64; ++Obj)
    for (uint32_t Field = 0; Field != 4; ++Field)
      Hashes.insert(H(LocationKey::forField(ObjectId(Obj), FieldId(Field))));
  // 256 distinct keys should hash to (nearly) 256 distinct values.
  EXPECT_GT(Hashes.size(), 250u);
}

} // namespace
