//===- tests/pipeline_test.cpp - End-to-end pipeline tests ----------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests of the full Figure 1 pipeline: static analysis ->
/// instrumentation -> execution -> detection, across the paper's ablation
/// configurations, checked against the exact O(N²) oracle.
///
//===----------------------------------------------------------------------===//

#include "baselines/NaiveDetector.h"
#include "herd/Pipeline.h"
#include "ir/Verifier.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace herd;
using namespace herd::testprogs;

namespace {

/// Runs the program uninstrumented with TraceEveryAccess into the exact
/// oracle; returns the ground-truth racy location set for that schedule.
std::set<LocationKey> oracleLocations(const Program &P, uint64_t Seed) {
  NaiveDetector Oracle;
  InterpOptions Opts;
  Opts.Seed = Seed;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Oracle, Opts);
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return Oracle.racyLocations();
}

TEST(PipelineTest, LockedCounterIsSilent) {
  CounterProgram CP = buildCounter(true, 30);
  PipelineResult R = runPipeline(CP.P, ToolConfig::full());
  ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
  EXPECT_TRUE(R.Reports.empty());
  // The static phase proves the locked increment pairs race-free via
  // MustCommonSync.  (The race set is not empty: main reads the counter
  // after join without the lock, and the *static* phase conservatively
  // ignores start/join ordering — the paper's footnote 5 — leaving the
  // dynamic ownership/join machinery to silence those.)
  EXPECT_GT(R.Static.CommonSyncFiltered, 0u);
}

TEST(PipelineTest, UnlockedCounterIsReported) {
  // With peeling disabled the in-loop traces survive, so the lost-update
  // race on Shared.count is reported for every schedule.
  CounterProgram CP = buildCounter(false, 30);
  for (uint64_t Seed : {1u, 7u, 23u, 77u}) {
    ToolConfig Config = ToolConfig::noPeeling();
    Config.Seed = Seed;
    PipelineResult R = runPipeline(CP.P, Config);
    ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
    EXPECT_EQ(R.Reports.countDistinctLocations(), 1u) << "seed " << Seed;
    EXPECT_GT(R.Instr.TracesInserted, 0u);
    ASSERT_FALSE(R.FormattedRaces.empty());
    EXPECT_NE(R.FormattedRaces[0].find("count"), std::string::npos);
  }
}

TEST(PipelineTest, SectionSevenTwoInteractionIsObservable) {
  // Section 7.2: the paper deliberately ignores the interaction between
  // the weaker-than optimizations and the ownership model, accepting that
  // "in theory our tool may inadvertently suppress accesses and thus fail
  // to report races".  This workload makes the theory concrete: after
  // peeling, each worker emits events only in its first iteration; on
  // schedules where worker 1 finishes that iteration while it still owns
  // the location, its only events are swallowed by the ownership filter
  // and the race can be missed.  The unoptimized configuration always
  // reports.  We assert both behaviours so a regression in either
  // direction is caught.
  CounterProgram CP = buildCounter(false, 30);
  bool FullMissedSomewhere = false;
  for (uint64_t Seed = 1; Seed != 20; ++Seed) {
    ToolConfig Full = ToolConfig::full();
    Full.Seed = Seed;
    PipelineResult RFull = runPipeline(CP.P, Full);
    ASSERT_TRUE(RFull.Run.Ok);

    ToolConfig Unopt = ToolConfig::noDominators();
    Unopt.Seed = Seed;
    PipelineResult RUnopt = runPipeline(CP.P, Unopt);
    ASSERT_TRUE(RUnopt.Run.Ok);
    EXPECT_EQ(RUnopt.Reports.countDistinctLocations(), 1u)
        << "unoptimized must always catch the race (seed " << Seed << ")";

    if (RFull.Reports.empty())
      FullMissedSomewhere = true;
  }
  EXPECT_TRUE(FullMissedSomewhere)
      << "expected at least one schedule exhibiting the Section 7.2 "
         "suppression; if this stops reproducing, the workload needs "
         "retuning, not the detector";
}

TEST(PipelineTest, UnoptimizedInstrumentationMatchesOracleExactly) {
  // With every access instrumented (no static pruning, no weaker-than
  // elimination, no peeling) the detector must report *exactly* the racy
  // locations of the exact O(N^2) oracle: Definition 1 (at least one
  // report per racy location) plus precision (nothing else).  The cache
  // stays on — it is transparent by construction.
  struct Case {
    const char *Name;
    Program P;
  };
  std::vector<Case> Cases;
  Cases.push_back({"counter-unlocked", buildCounter(false, 25).P});
  Cases.push_back({"counter-locked", buildCounter(true, 25).P});
  Cases.push_back({"fig2", buildFigure2(false)});
  Cases.push_back({"fig2-samepq", buildFigure2(true)});
  Cases.push_back({"fig3loop", buildFig3Loop(12)});

  for (Case &C : Cases) {
    for (uint64_t Seed : {1u, 5u, 23u}) {
      ToolConfig Config;
      Config.StaticAnalysis = false;
      Config.StaticWeakerThan = false;
      Config.LoopPeeling = false;
      Config.Seed = Seed;
      PipelineResult R = runPipeline(C.P, Config);
      ASSERT_TRUE(R.Run.Ok) << C.Name << ": " << R.Run.Error;
      EXPECT_EQ(R.Reports.reportedLocations(), oracleLocations(C.P, Seed))
          << C.Name << " seed " << Seed;
    }
  }
}

TEST(PipelineTest, OptimizationsDoNotChangeReports) {
  // Section 7.2: "we verified that the same races were reported whether
  // the optimizations using the unsafe weaker-than relation were enabled
  // or disabled" — our equivalent check across all Table 2 ablations.
  // (The adversarial unlocked counter is excluded: it triggers the
  // Section 7.2 divergence, covered by its own test above.)
  std::vector<Program> Programs;
  Programs.push_back(buildCounter(true, 20).P);
  Programs.push_back(buildFigure2(false));
  Programs.push_back(buildFig3Loop(10));

  for (const Program &P : Programs) {
    ToolConfig Configs[] = {ToolConfig::full(), ToolConfig::noStatic(),
                            ToolConfig::noDominators(),
                            ToolConfig::noPeeling(), ToolConfig::noCache()};
    std::set<LocationKey> Reference;
    bool First = true;
    for (ToolConfig Config : Configs) {
      Config.Seed = 7;
      PipelineResult R = runPipeline(P, Config);
      ASSERT_TRUE(R.Run.Ok) << R.Run.Error;
      if (First) {
        Reference = R.Reports.reportedLocations();
        First = false;
      } else {
        EXPECT_EQ(R.Reports.reportedLocations(), Reference);
      }
    }
  }
}

TEST(PipelineTest, BaseConfigRunsWithoutDetection) {
  CounterProgram CP = buildCounter(false, 10);
  PipelineResult R = runPipeline(CP.P, ToolConfig::base());
  ASSERT_TRUE(R.Run.Ok);
  EXPECT_TRUE(R.Reports.empty());
  EXPECT_EQ(R.Stats.EventsSeen, 0u);
  EXPECT_EQ(R.Instr.TracesInserted, 0u);
}

TEST(PipelineTest, StaticPhaseReducesInstrumentation) {
  // mtrt-style effect: the static race set keeps instrumentation off the
  // provably race-free accesses — here, a single-threaded loop whose
  // accesses cannot race at all.
  Program P = buildFig3Loop(50);
  PipelineResult Full = runPipeline(P, ToolConfig::full());
  PipelineResult NoStatic = runPipeline(P, ToolConfig::noStatic());
  ASSERT_TRUE(Full.Run.Ok && NoStatic.Run.Ok);
  EXPECT_EQ(Full.Instr.TracesInserted, 0u);
  EXPECT_GT(NoStatic.Instr.TracesInserted, 0u);
  EXPECT_LT(Full.Stats.EventsSeen, NoStatic.Stats.EventsSeen);
}

TEST(PipelineTest, CacheAbsorbsMostEvents) {
  Program P = buildFig3Loop(500);
  // Instrument every access and keep the in-loop traces so the cache has
  // something to absorb.
  ToolConfig Config;
  Config.StaticAnalysis = false;
  Config.StaticWeakerThan = false;
  Config.LoopPeeling = false;
  PipelineResult R = runPipeline(P, Config);
  ASSERT_TRUE(R.Run.Ok);
  // Nearly every event is absorbed before the detector — by the inline L0
  // hook filter (which borrows the cache's invariant, docs/HOOKPATH.md) or
  // by the cache itself; the detector sees a handful.
  EXPECT_GT(R.Stats.Hook.FilterHits + R.Stats.CacheHits, 400u);
  EXPECT_LT(R.Stats.Detector.EventsIn, 20u);
}

TEST(PipelineTest, PeelingReducesRuntimeEvents) {
  Program P = buildFig3Loop(300);
  // A single-threaded loop is statically race-free, so exercise the
  // peeling path with the static race set disabled.
  ToolConfig WithPeel = ToolConfig::noStatic();
  ToolConfig NoPeel = ToolConfig::noStatic();
  NoPeel.LoopPeeling = false;
  PipelineResult A = runPipeline(P, WithPeel);
  PipelineResult B = runPipeline(P, NoPeel);
  ASSERT_TRUE(A.Run.Ok && B.Run.Ok);
  EXPECT_LE(A.Stats.EventsSeen, B.Stats.EventsSeen);
}

TEST(PipelineTest, FieldsMergedAndNoOwnershipIncreaseReports) {
  // Table 3's ordering on a workload with per-field locking and an
  // init-then-handoff pattern.
  Program P;
  {
    IRBuilder B(P);
    ClassId Obj = B.makeClass("Obj");
    FieldId F0 = B.makeField(Obj, "safeA");
    FieldId F1 = B.makeField(Obj, "safeB");
    ClassId Worker = B.makeClass("Worker");
    FieldId Target = B.makeField(Worker, "target");
    FieldId LockA = B.makeField(Worker, "lockA");
    FieldId LockB = B.makeField(Worker, "lockB");
    ClassId LockCls = B.makeClass("L");
    B.startMethod(Worker, "run", 1);
    {
      RegId O = B.emitGetField(B.thisReg(), Target);
      RegId LA = B.emitGetField(B.thisReg(), LockA);
      RegId LB = B.emitGetField(B.thisReg(), LockB);
      RegId N = B.emitConst(10);
      B.forLoop(0, N, 1, [&](RegId I) {
        B.sync(LA, [&] { B.emitPutField(O, F0, I); });
        B.sync(LB, [&] { B.emitPutField(O, F1, I); });
      });
      B.emitReturn();
    }
    B.startMain();
    RegId O = B.emitNew(Obj);
    RegId LA = B.emitNew(LockCls);
    RegId LB = B.emitNew(LockCls);
    // Parent initializes without locks, then hands off (ownership covers
    // this; NoOwnership reports it).
    B.emitPutField(O, F0, B.emitConst(0));
    B.emitPutField(O, F1, B.emitConst(0));
    RegId W1 = B.emitNew(Worker);
    RegId W2 = B.emitNew(Worker);
    for (RegId W : {W1, W2}) {
      B.emitPutField(W, Target, O);
      B.emitPutField(W, LockA, LA);
      B.emitPutField(W, LockB, LB);
    }
    B.emitThreadStart(W1);
    B.emitThreadStart(W2);
    B.emitReturn();
  }
  ASSERT_TRUE(verifyProgram(P).empty());

  PipelineResult Full = runPipeline(P, ToolConfig::full());
  PipelineResult Merged = runPipeline(P, ToolConfig::fieldsMerged());
  PipelineResult NoOwn = runPipeline(P, ToolConfig::noOwnership());
  ASSERT_TRUE(Full.Run.Ok && Merged.Run.Ok && NoOwn.Run.Ok);

  // Per-field locking is correct: Full reports nothing.
  EXPECT_EQ(Full.Reports.countDistinctObjects(), 0u);
  // Merged fields conflate the two lock disciplines: spurious report.
  EXPECT_GE(Merged.Reports.countDistinctObjects(), 1u);
  // Without ownership the unlocked initialization is "racy".
  EXPECT_GE(NoOwn.Reports.countDistinctObjects(), 1u);
}

TEST(PipelineTest, DeterministicAcrossRepeatedRuns) {
  Program P = buildFigure2(false);
  ToolConfig Config = ToolConfig::full();
  Config.Seed = 99;
  PipelineResult A = runPipeline(P, Config);
  PipelineResult B = runPipeline(P, Config);
  EXPECT_EQ(A.Reports.reportedLocations(), B.Reports.reportedLocations());
  EXPECT_EQ(A.Run.InstructionsExecuted, B.Run.InstructionsExecuted);
  EXPECT_EQ(A.Stats.EventsSeen, B.Stats.EventsSeen);
}

TEST(PipelineTest, FormattedReportsNameTheSite) {
  Program P = buildFigure2(false);
  PipelineResult R = runPipeline(P, ToolConfig::full());
  ASSERT_TRUE(R.Run.Ok);
  ASSERT_FALSE(R.FormattedRaces.empty());
  // Each report names the Data object's field f and a statement label.
  bool NamesField = false, NamesSite = false;
  for (const std::string &Line : R.FormattedRaces) {
    NamesField |= Line.find("field f") != std::string::npos;
    NamesSite |= Line.find("T1") != std::string::npos ||
                 Line.find("T2") != std::string::npos;
  }
  EXPECT_TRUE(NamesField);
  EXPECT_TRUE(NamesSite);
}

} // namespace
