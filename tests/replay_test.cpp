//===- tests/replay_test.cpp - Schedule record/replay tests ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the DejaVu-style record/replay facility (Section 2.6): the
/// paper's workflow runs the cheap detector alongside recording and does
/// "the expensive reconstruction of FullRace during DejaVu replay".  We
/// verify that a recorded schedule replays to the identical execution and
/// demonstrate exactly that workflow: detect online, then reconstruct the
/// full racing-pair counts offline on the replayed run.
///
//===----------------------------------------------------------------------===//

#include "baselines/NaiveDetector.h"
#include "detect/EventLog.h"
#include "detect/RaceRuntime.h"
#include "runtime/Interpreter.h"
#include "support/Rng.h"
#include "workloads/Workloads.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace herd;
using namespace herd::testprogs;

namespace {

TEST(ReplayTest, ReplayReproducesTheRunExactly) {
  CounterProgram CP = buildCounter(/*Locked=*/false, 25);

  ScheduleTrace Trace;
  InterpOptions RecordOpts;
  RecordOpts.Seed = 42;
  RecordOpts.Record = &Trace;
  Interpreter Recorder(CP.P, nullptr, RecordOpts);
  InterpResult Original = Recorder.run();
  ASSERT_TRUE(Original.Ok) << Original.Error;
  ASSERT_FALSE(Trace.Slices.empty());

  InterpOptions ReplayOpts;
  ReplayOpts.Seed = 999; // must be irrelevant under replay
  ReplayOpts.Replay = &Trace;
  Interpreter Replayer(CP.P, nullptr, ReplayOpts);
  InterpResult Replayed = Replayer.run();
  ASSERT_TRUE(Replayed.Ok) << Replayed.Error;

  EXPECT_EQ(Replayed.Output, Original.Output);
  EXPECT_EQ(Replayed.InstructionsExecuted, Original.InstructionsExecuted);
  EXPECT_EQ(Replayed.ThreadsCreated, Original.ThreadsCreated);
}

TEST(ReplayTest, ReplayedEventStreamIsIdentical) {
  struct EventCollector : RuntimeHooks {
    std::vector<std::tuple<uint32_t, uint64_t, uint8_t>> Events;
    void onAccess(ThreadId T, LocationKey L, AccessKind A,
                  SiteId) override {
      Events.emplace_back(T.index(), L.raw(), uint8_t(A));
    }
    void onMonitorEnter(ThreadId T, LockId L, bool R,
                        SiteId = SiteId::invalid()) override {
      Events.emplace_back(T.index(), L.index(), R ? 100 : 101);
    }
  };

  CounterProgram CP = buildCounter(/*Locked=*/true, 15);
  ScheduleTrace Trace;
  EventCollector A;
  InterpOptions RecordOpts;
  RecordOpts.Seed = 7;
  RecordOpts.Record = &Trace;
  RecordOpts.TraceEveryAccess = true;
  Interpreter Recorder(CP.P, &A, RecordOpts);
  ASSERT_TRUE(Recorder.run().Ok);

  EventCollector B;
  InterpOptions ReplayOpts;
  ReplayOpts.Replay = &Trace;
  ReplayOpts.TraceEveryAccess = true;
  Interpreter Replayer(CP.P, &B, ReplayOpts);
  ASSERT_TRUE(Replayer.run().Ok);

  EXPECT_EQ(A.Events, B.Events);
}

TEST(ReplayTest, DejaVuWorkflowOnlineDetectOfflineReconstruct) {
  // Online: cheap detection while recording.  Offline: replay the same
  // interleaving into the exact oracle and reconstruct |MemRace(m)| — the
  // FullRace information Definition 1 deliberately does not enumerate
  // online.
  CounterProgram CP = buildCounter(/*Locked=*/false, 25);

  ScheduleTrace Trace;
  RaceRuntime Online;
  InterpOptions RecordOpts;
  RecordOpts.Seed = 5;
  RecordOpts.Record = &Trace;
  RecordOpts.TraceEveryAccess = true;
  Interpreter Recorder(CP.P, &Online, RecordOpts);
  ASSERT_TRUE(Recorder.run().Ok);
  ASSERT_FALSE(Online.reporter().empty()) << "need a racy recording";

  NaiveDetector Oracle;
  InterpOptions ReplayOpts;
  ReplayOpts.Replay = &Trace;
  ReplayOpts.TraceEveryAccess = true;
  Interpreter Replayer(CP.P, &Oracle, ReplayOpts);
  ASSERT_TRUE(Replayer.run().Ok);

  // Same racy locations; and the offline pass knows the full pair counts.
  EXPECT_EQ(Oracle.racyLocations(), Online.reporter().reportedLocations());
  for (LocationKey Loc : Oracle.racyLocations())
    EXPECT_GT(Oracle.memRaceSize(Loc), 1u)
        << "FullRace reconstruction should enumerate many pairs where the "
           "online detector reported once";
}

TEST(ReplayTest, EveryWorkloadReplaysExactly) {
  for (Workload &W : buildAllWorkloads()) {
    ScheduleTrace Trace;
    InterpOptions RecordOpts;
    RecordOpts.Seed = 3;
    RecordOpts.Record = &Trace;
    Interpreter Recorder(W.P, nullptr, RecordOpts);
    InterpResult Original = Recorder.run();
    ASSERT_TRUE(Original.Ok) << W.Name << ": " << Original.Error;

    InterpOptions ReplayOpts;
    ReplayOpts.Replay = &Trace;
    Interpreter Replayer(W.P, nullptr, ReplayOpts);
    InterpResult Replayed = Replayer.run();
    ASSERT_TRUE(Replayed.Ok) << W.Name << ": " << Replayed.Error;
    EXPECT_EQ(Replayed.Output, Original.Output) << W.Name;
    EXPECT_EQ(Replayed.InstructionsExecuted, Original.InstructionsExecuted)
        << W.Name;
  }
}

TEST(TraceFuzzTest, MutatedBuffersNeverCrashTheDecoder) {
  // Build a healthy serialized log from a real execution, then hammer the
  // decoder with random corruptions: byte flips, truncations, extensions.
  // Every outcome must be a clean accept or a diagnosed reject — never a
  // crash, sanitizer report, or silent out-of-bounds read.
  CounterProgram CP = buildCounter(/*Locked=*/false, 10);
  EventLog Log;
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(CP.P, &Log, Opts);
  ASSERT_TRUE(Interp.run().Ok);
  ASSERT_GT(Log.size(), 0u);
  std::vector<uint8_t> Good = Log.serialize();

  Rng R(0xF00Dull);
  uint64_t Accepted = 0, Rejected = 0;
  for (int Iter = 0; Iter != 2000; ++Iter) {
    std::vector<uint8_t> Bytes = Good;
    if (R.nextChance(1, 4)) {
      // Structural damage: resize to an arbitrary nearby length.
      size_t NewSize = R.nextBelow(Good.size() + 64);
      Bytes.resize(NewSize, uint8_t(R.nextBelow(256)));
    }
    uint64_t Flips = 1 + R.nextBelow(8);
    for (uint64_t F = 0; F != Flips && !Bytes.empty(); ++F) {
      size_t Pos = size_t(R.nextBelow(Bytes.size()));
      Bytes[Pos] ^= uint8_t(1 + R.nextBelow(255));
    }

    EventLog Out;
    TraceResult TR = EventLog::deserialize(Bytes, Out);
    if (TR.Ok) {
      ++Accepted;
      // Accepted buffers must be in canonical form: re-serializing the
      // decoded log reproduces the input bytes exactly.
      EXPECT_EQ(Out.serialize(), Bytes);
    } else {
      ++Rejected;
      EXPECT_FALSE(TR.Error.empty());
      EXPECT_EQ(Out.size(), 0u) << "failed deserialize must leave no "
                                   "partial records behind";
    }
  }
  // Random damage to a checksummed-nothing format occasionally leaves a
  // valid trace (flags/id bytes are free-form), but most mutations must
  // trip a check.
  EXPECT_GT(Rejected, 0u);
  SUCCEED() << Accepted << " accepted, " << Rejected << " rejected";
}

TEST(TraceFuzzTest, EmptyAndHeaderOnlyBuffers) {
  EventLog Out;
  EXPECT_FALSE(EventLog::deserialize({}, Out).Ok);

  // A bare header is a valid, empty trace.
  EventLog Empty;
  EXPECT_TRUE(EventLog::deserialize(Empty.serialize(), Out).Ok);
  EXPECT_EQ(Out.size(), 0u);
}

TEST(ReplayTest, DivergentTraceIsARuntimeError) {
  CounterProgram CP = buildCounter(true, 5);
  ScheduleTrace Trace;
  Trace.Slices.push_back({7, 3}); // thread 7 never exists
  InterpOptions Opts;
  Opts.Replay = &Trace;
  Interpreter Interp(CP.P, nullptr, Opts);
  InterpResult R = Interp.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("diverged"), std::string::npos);
}

TEST(ReplayTest, TruncatedTraceStopsEarlyWithoutError) {
  // Replaying a prefix of a recording executes exactly that prefix.
  CounterProgram CP = buildCounter(true, 10);
  ScheduleTrace Trace;
  InterpOptions RecordOpts;
  RecordOpts.Record = &Trace;
  Interpreter Recorder(CP.P, nullptr, RecordOpts);
  InterpResult Full = Recorder.run();
  ASSERT_TRUE(Full.Ok);

  ScheduleTrace Half;
  Half.Slices.assign(Trace.Slices.begin(),
                     Trace.Slices.begin() +
                         std::ptrdiff_t(Trace.Slices.size() / 2));
  InterpOptions ReplayOpts;
  ReplayOpts.Replay = &Half;
  Interpreter Replayer(CP.P, nullptr, ReplayOpts);
  InterpResult R = Replayer.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_LT(R.InstructionsExecuted, Full.InstructionsExecuted);
}

} // namespace
