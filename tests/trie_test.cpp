//===- tests/trie_test.cpp - Access-trie unit tests -----------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for Section 3.2: the trie's weakness filter, the three race-check
/// cases, the t_⊥ transition, and pruning of stronger stored accesses.
///
//===----------------------------------------------------------------------===//

#include "detect/AccessTrie.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

AccessTrie::Outcome feed(AccessTrie &Trie, uint32_t Thread,
                         std::initializer_list<uint32_t> Locks,
                         AccessKind Access) {
  LockSet L;
  for (uint32_t Lock : Locks)
    L.insert(LockId(Lock));
  return Trie.process(ThreadId(Thread), L, Access);
}

constexpr AccessKind R = AccessKind::Read;
constexpr AccessKind W = AccessKind::Write;

TEST(AccessTrieTest, SameThreadNeverRaces) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, W).Raced);
  AccessTrie::Outcome O = feed(Trie, 1, {}, W);
  EXPECT_FALSE(O.Raced);
  EXPECT_TRUE(O.Filtered); // identical access is redundant
}

TEST(AccessTrieTest, TwoWritersNoLocksRace) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, W).Raced);
  AccessTrie::Outcome O = feed(Trie, 2, {}, W);
  EXPECT_TRUE(O.Raced);
  EXPECT_TRUE(O.PriorThreadKnown);
  EXPECT_EQ(O.PriorThread, ThreadId(1));
  EXPECT_EQ(O.PriorAccess, W);
  EXPECT_TRUE(O.PriorLocks.empty());
}

TEST(AccessTrieTest, TwoReadersNeverRace) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, R).Raced);
  EXPECT_FALSE(feed(Trie, 2, {}, R).Raced);
  EXPECT_FALSE(feed(Trie, 3, {}, R).Raced);
}

TEST(AccessTrieTest, ReadThenWriteRaces) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, R).Raced);
  EXPECT_TRUE(feed(Trie, 2, {}, W).Raced);
}

TEST(AccessTrieTest, WriteThenReadRaces) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, W).Raced);
  EXPECT_TRUE(feed(Trie, 2, {}, R).Raced);
}

TEST(AccessTrieTest, CommonLockPreventsRace) {
  // Case I: a shared lock prunes the whole subtree.
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {7}, W).Raced);
  EXPECT_FALSE(feed(Trie, 2, {7}, W).Raced);
  EXPECT_FALSE(feed(Trie, 2, {7, 9}, W).Raced);
}

TEST(AccessTrieTest, DisjointLocksetsRace) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {7}, W).Raced);
  AccessTrie::Outcome O = feed(Trie, 2, {9}, W);
  EXPECT_TRUE(O.Raced);
  EXPECT_TRUE(O.PriorLocks.contains(LockId(7)));
}

TEST(AccessTrieTest, OverlappingLocksetsDoNotRace) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {3, 7}, W).Raced);
  EXPECT_FALSE(feed(Trie, 2, {7, 9}, W).Raced); // share lock 7
}

TEST(AccessTrieTest, MutuallyIntersectingLocksetsDoNotRace) {
  // The mtrt join idiom (Section 8.3): locksets {S1, c}, {S2, c}, {S1, S2}
  // are pairwise intersecting although no single lock is common to all —
  // Eraser's single-common-lock rule reports here, the trie does not.
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {101, 5}, W).Raced);
  EXPECT_FALSE(feed(Trie, 2, {102, 5}, W).Raced);
  EXPECT_FALSE(feed(Trie, 0, {101, 102}, W).Raced);
}

TEST(AccessTrieTest, WeaknessFilterDiscardsStrongerAccesses) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, W).Filtered); // first is never filtered
  // More locks, same thread, weaker kind: all redundant.
  EXPECT_TRUE(feed(Trie, 1, {3}, W).Filtered);
  EXPECT_TRUE(feed(Trie, 1, {3, 4}, R).Filtered);
  EXPECT_TRUE(feed(Trie, 1, {}, R).Filtered);
  // Different thread is not filtered by a concrete-thread node.
  EXPECT_FALSE(feed(Trie, 2, {}, R).Filtered);
}

TEST(AccessTrieTest, ReadDoesNotFilterLaterWrite) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {}, R).Filtered);
  AccessTrie::Outcome O = feed(Trie, 1, {}, W);
  EXPECT_FALSE(O.Filtered); // READ is not ⊑ WRITE
  EXPECT_FALSE(O.Raced);
  // Now the WRITE covers future reads and writes of that thread.
  EXPECT_TRUE(feed(Trie, 1, {}, R).Filtered);
  EXPECT_TRUE(feed(Trie, 1, {}, W).Filtered);
}

TEST(AccessTrieTest, BottomThreadFiltersEveryThread) {
  // Two threads with the same lockset meet to t_⊥; afterwards any thread's
  // access with a superset lockset is redundant (Section 3.1's intuition).
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {5}, W).Raced);
  EXPECT_FALSE(feed(Trie, 2, {5}, W).Raced); // same lockset: no race, meet
  EXPECT_TRUE(feed(Trie, 3, {5}, W).Filtered);
  EXPECT_TRUE(feed(Trie, 4, {5, 6}, R).Filtered);
}

TEST(AccessTrieTest, BottomThreadRaceReportsUnknownPrior) {
  AccessTrie Trie;
  feed(Trie, 1, {5}, W);
  feed(Trie, 2, {5}, W);
  AccessTrie::Outcome O = feed(Trie, 3, {6}, W);
  EXPECT_TRUE(O.Raced);
  EXPECT_FALSE(O.PriorThreadKnown); // t_⊥ erased the thread (Section 3.1)
  EXPECT_TRUE(O.PriorLocks.contains(LockId(5)));
}

TEST(AccessTrieTest, PruningRemovesStrongerNodes) {
  AccessTrie Trie;
  // Store a strongly protected access, then a weaker one that subsumes it.
  feed(Trie, 1, {3, 4}, R);
  EXPECT_EQ(Trie.storedAccessCount(), 1u);
  feed(Trie, 1, {}, W); // weaker than everything thread 1 stored
  EXPECT_EQ(Trie.storedAccessCount(), 1u);
  // The {3,4} path nodes should have been garbage collected.
  EXPECT_EQ(Trie.nodeCount(), 1u);
}

TEST(AccessTrieTest, PruningKeepsIncomparableNodes) {
  AccessTrie Trie;
  feed(Trie, 1, {3}, W);
  feed(Trie, 2, {4}, W); // races, but is still recorded
  EXPECT_EQ(Trie.storedAccessCount(), 2u);
  // Thread 1 with lockset {4}: nothing is pruned ({3} is incomparable),
  // and the access meets into the existing {4} node, driving its thread to
  // t_bottom rather than adding a node (one node per lockset).
  feed(Trie, 1, {4}, W);
  EXPECT_EQ(Trie.storedAccessCount(), 2u);
  // The t_bottom node now filters every thread holding lock 4.
  EXPECT_TRUE(feed(Trie, 3, {4}, W).Filtered);
}

TEST(AccessTrieTest, RaceStillRecordsTheRacingAccess) {
  // After reporting, the racing access is stored so future conflicts with
  // *it* are also caught.
  AccessTrie Trie;
  feed(Trie, 1, {3}, W);
  EXPECT_TRUE(feed(Trie, 2, {}, W).Raced);
  // Thread 3 under lock 3 does not race with thread 1's access (common
  // lock) but does race with thread 2's stored lock-free write.
  EXPECT_TRUE(feed(Trie, 3, {3}, W).Raced);
}

TEST(AccessTrieTest, NodeCountTracksStructure) {
  AccessTrie Trie;
  EXPECT_EQ(Trie.nodeCount(), 1u); // root
  feed(Trie, 1, {2, 5}, W);
  EXPECT_EQ(Trie.nodeCount(), 3u); // root -> 2 -> 5
  feed(Trie, 1, {2, 7}, W);
  // Filtered by the weaker {2,5}? No: {2,5} ⊄ {2,7}.  New path shares node 2.
  EXPECT_EQ(Trie.nodeCount(), 4u);
}

TEST(AccessTrieTest, LocksetOrderCanonicalization) {
  // The same lockset inserted via different acquisition orders must land on
  // the same node (locksets are sets; the trie path is canonical).
  AccessTrie Trie;
  LockSet L1, L2;
  L1.insert(LockId(9));
  L1.insert(LockId(2));
  L2.insert(LockId(2));
  L2.insert(LockId(9));
  Trie.process(ThreadId(1), L1, W);
  AccessTrie::Outcome O = Trie.process(ThreadId(1), L2, W);
  EXPECT_TRUE(O.Filtered);
  EXPECT_EQ(Trie.nodeCount(), 3u);
}

TEST(AccessTrieTest, DeepLocksetNesting) {
  AccessTrie Trie;
  EXPECT_FALSE(feed(Trie, 1, {1, 2, 3, 4, 5, 6, 7, 8}, W).Raced);
  // Shares lock 8 with the stored access: no race.
  EXPECT_FALSE(feed(Trie, 2, {8}, W).Raced);
  // Thread 1 under {9}: never races with its own access, but thread 2's
  // stored write under {8} has a disjoint lockset.
  EXPECT_TRUE(feed(Trie, 1, {9}, W).Raced);
}

} // namespace
