//===- tests/detector_differential_test.cpp - HERD vs happens-before ------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-detector differential tests: the lockset detector against the
/// vector-clock happens-before baseline, on randomly generated MiniJ
/// programs and on hand-written racy / race-free pairs.
///
/// The paper's claim (Section 2.2) is that lockset detection reports a
/// superset of the races any single witnessed schedule exhibits: a
/// happens-before race implies the two accesses were unordered, hence
/// shared no lock, hence had disjoint locksets.  Two qualifications make
/// the assertions below precise:
///
///   - The comparison runs HERD *without* the ownership optimization.
///     Ownership discards a location's events up to the second thread's
///     first access; a race whose only unordered pair involves one of
///     those discarded accesses is invisible to the full configuration
///     (deliberately so — Section 7 trades those initialization races
///     away).  Happens-before has no such window, so VC ⊆ HERD holds for
///     the no-ownership configuration, at location granularity.
///   - Both detectors see the SAME execution (one interpreter run with
///     fanout hooks): ownership and happens-before are schedule-sensitive,
///     so comparing separate runs would be meaningless.
///
/// The join model (Section 2.3 dummy locks) is exact for these programs:
/// the fuzz generator only ever joins from main (tests/FuzzPrograms.h), so
/// each dummy join lock has exactly the one reader the model assumes.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "baselines/VectorClockDetector.h"
#include "detect/RaceRuntime.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

#include <set>

using namespace herd;

namespace {

struct TripleRun {
  std::set<LocationKey> Full;  ///< HERD, all optimizations on
  std::set<LocationKey> NoOwn; ///< HERD without ownership
  std::set<LocationKey> VC;    ///< happens-before baseline
};

/// One execution, three detectors observing the identical event stream.
/// The program runs uninstrumented with TraceEveryAccess so no static
/// filtering perturbs the comparison.
TripleRun runAllDetectors(const Program &P, uint64_t Seed) {
  RaceRuntime Full;
  RaceRuntimeOptions NoOwnOpts;
  NoOwnOpts.UseOwnership = false;
  RaceRuntime NoOwn(NoOwnOpts);
  VectorClockDetector VC;
  FanoutHooks Fanout{&Full, &NoOwn, &VC};

  InterpOptions Opts;
  Opts.Seed = Seed;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Fanout, Opts);
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;

  TripleRun Out;
  Out.Full = Full.reporter().reportedLocations();
  Out.NoOwn = NoOwn.reporter().reportedLocations();
  Out.VC = VC.reportedLocations();
  return Out;
}

testing::AssertionResult isSubset(const std::set<LocationKey> &Sub,
                                  const std::set<LocationKey> &Super,
                                  const char *SubName,
                                  const char *SuperName) {
  for (LocationKey Loc : Sub)
    if (!Super.count(Loc))
      return testing::AssertionFailure()
             << SubName << " reported location " << Loc.raw() << " that "
             << SuperName << " missed";
  return testing::AssertionSuccess();
}

class DetectorDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectorDifferentialTest, LocksetReportsSupersetOfHappensBefore) {
  Program P = fuzzprogs::generateProgram(GetParam());
  for (uint64_t Seed : {3u, 11u}) {
    TripleRun Run = runAllDetectors(P, Seed);
    EXPECT_TRUE(isSubset(Run.VC, Run.NoOwn, "vector-clock", "HERD-noown"))
        << "program seed " << GetParam() << " schedule " << Seed;
    // Ownership only ever removes reports, never adds them.
    EXPECT_TRUE(isSubset(Run.Full, Run.NoOwn, "HERD-full", "HERD-noown"))
        << "program seed " << GetParam() << " schedule " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, DetectorDifferentialTest,
                         ::testing::Range<uint64_t>(1, 21));

TEST(DetectorDifferentialTest, RacyCounterReportedByBothDetectors) {
  Program P = testprogs::buildCounter(/*Locked=*/false, 30).P;
  for (uint64_t Seed : {1u, 7u, 19u}) {
    TripleRun Run = runAllDetectors(P, Seed);
    EXPECT_FALSE(Run.Full.empty()) << "seed " << Seed;
    EXPECT_FALSE(Run.VC.empty()) << "seed " << Seed;
    EXPECT_TRUE(isSubset(Run.VC, Run.Full, "vector-clock", "HERD-full"))
        << "seed " << Seed;
  }
}

TEST(DetectorDifferentialTest, LockedCounterReportedByNeitherDetector) {
  // The race-free variant of the same program: neither full HERD nor the
  // happens-before baseline may report.  The no-ownership ablation is
  // deliberately excluded — main initializes the counter before starting
  // the workers, without the lock, and flagging that initialization write
  // is exactly the false positive ownership exists to remove (Section 7).
  Program P = testprogs::buildCounter(/*Locked=*/true, 30).P;
  for (uint64_t Seed : {1u, 7u, 19u}) {
    TripleRun Run = runAllDetectors(P, Seed);
    EXPECT_TRUE(Run.Full.empty()) << "seed " << Seed;
    EXPECT_TRUE(Run.VC.empty()) << "seed " << Seed;
  }
}

TEST(DetectorDifferentialTest, Figure2RaceReportedInEverySchedule) {
  // The paper's Figure 2: the feasible race the lockset approach reports
  // in every schedule, while happens-before only sees it in schedules
  // where the critical sections run in the racy order (Section 2.2).
  Program P = testprogs::buildFigure2(/*SamePQ=*/false);
  bool VCMissedSomewhere = false;
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    TripleRun Run = runAllDetectors(P, Seed);
    EXPECT_FALSE(Run.Full.empty()) << "seed " << Seed;
    EXPECT_TRUE(isSubset(Run.VC, Run.NoOwn, "vector-clock", "HERD-noown"))
        << "seed " << Seed;
    if (Run.VC.size() < Run.NoOwn.size())
      VCMissedSomewhere = true;
  }
  // The headline difference must actually materialize: at least one
  // schedule where happens-before is silent on a location we report.
  EXPECT_TRUE(VCMissedSomewhere);
}

} // namespace
