//===- tests/ir_test.cpp - MiniJ IR unit tests ----------------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Program.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

TEST(ProgramTest, DeclarationsGetDenseIds) {
  Program P;
  ClassId C1 = P.addClass("A");
  ClassId C2 = P.addClass("B");
  EXPECT_EQ(C1.index(), 0u);
  EXPECT_EQ(C2.index(), 1u);
  FieldId F1 = P.addField(C1, "x", false);
  FieldId F2 = P.addField(C1, "y", false);
  FieldId S1 = P.addField(C1, "s", true);
  EXPECT_EQ(P.field(F1).SlotIndex, 0u);
  EXPECT_EQ(P.field(F2).SlotIndex, 1u);
  EXPECT_EQ(P.field(S1).SlotIndex, 0u); // statics slot separately
  EXPECT_TRUE(P.field(S1).IsStatic);
}

TEST(ProgramTest, FindByName) {
  Program P;
  ClassId C = P.addClass("Worker");
  P.addField(C, "count", false);
  P.addMethod(C, "run", 1, false, false);
  EXPECT_EQ(P.findClass("Worker"), C);
  EXPECT_FALSE(P.findClass("Nope").isValid());
  EXPECT_TRUE(P.findField(C, "count").isValid());
  EXPECT_FALSE(P.findField(C, "nope").isValid());
  EXPECT_TRUE(P.findMethod(C, "run").isValid());
  EXPECT_EQ(P.classDecl(C).RunMethod, P.findMethod(C, "run"));
}

TEST(IRBuilderTest, SimpleMainVerifies) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId X = B.emitConst(41);
  RegId One = B.emitConst(1);
  RegId Sum = B.emitBinOp(BinOpKind::Add, X, One);
  B.emitPrint(Sum);
  B.emitReturn();
  EXPECT_TRUE(verifyProgram(P).empty());
  EXPECT_EQ(P.countInstructions(), 5u);
}

TEST(IRBuilderTest, IfThenElseBuildsDiamond) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId C = B.emitConst(1);
  B.ifThenElse(
      C, [&] { B.emitPrint(B.emitConst(10)); },
      [&] { B.emitPrint(B.emitConst(20)); });
  B.emitReturn();
  ASSERT_TRUE(verifyProgram(P).empty());
  // Entry + then + else + join.
  EXPECT_EQ(P.method(P.MainMethod).Blocks.size(), 4u);
}

TEST(IRBuilderTest, WhileLoopHasBackEdge) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId N = B.emitConst(10);
  B.forLoop(0, N, 1, [&](RegId I) { B.emitPrint(I); });
  B.emitReturn();
  ASSERT_TRUE(verifyProgram(P).empty()) << verifyProgram(P)[0];
}

TEST(IRBuilderTest, SyncEmitsBalancedMonitorOps) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("L");
  B.startMain();
  RegId Obj = B.emitNew(C);
  B.sync(Obj, [&] {
    B.sync(Obj, [&] { B.emitPrint(B.emitConst(1)); });
  });
  B.emitReturn();
  EXPECT_TRUE(verifyProgram(P).empty());
}

TEST(VerifierTest, MissingTerminatorReported) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  B.emitConst(1); // no return
  auto Problems = verifyProgram(P);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, UnbalancedMonitorReported) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("L");
  B.startMain();
  RegId Obj = B.emitNew(C);
  B.emitMonitorEnter(Obj);
  B.emitReturn(); // return with the monitor still held
  auto Problems = verifyProgram(P);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("monitor"), std::string::npos);
}

TEST(VerifierTest, MismatchedMonitorExitReported) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("L");
  B.startMain();
  RegId Obj = B.emitNew(C);
  uint32_t R1 = B.emitMonitorEnter(Obj);
  uint32_t R2 = B.emitMonitorEnter(Obj);
  B.emitMonitorExit(Obj, R1); // exits outer region while inner is open
  B.emitMonitorExit(Obj, R2);
  B.emitReturn();
  auto Problems = verifyProgram(P);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("monitorexit"), std::string::npos);
}

TEST(VerifierTest, CallArityMismatchReported) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("A");
  MethodId Callee = B.startMethod(C, "f", /*NumParams=*/2);
  B.emitReturn();
  B.startMain();
  RegId X = B.emitConst(0);
  Instr I;
  I.Op = Opcode::Call;
  I.Callee = Callee;
  I.Args = {X}; // one arg for a two-param method
  P.method(P.MainMethod).Blocks[0].Instrs.push_back(I);
  B.emitReturn();
  auto Problems = verifyProgram(P);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("arity"), std::string::npos);
}

TEST(VerifierTest, MissingMainReported) {
  Program P;
  auto Problems = verifyProgram(P);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("main"), std::string::npos);
}

TEST(PrinterTest, RendersRecognizableText) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Point");
  FieldId F = B.makeField(C, "x");
  B.startMain();
  B.site("T01");
  RegId Obj = B.emitNew(C);
  RegId V = B.emitConst(100);
  B.emitPutField(Obj, F, V);
  B.emitReturn();
  std::string Text = printProgram(P);
  EXPECT_NE(Text.find("new Point"), std::string::npos);
  EXPECT_NE(Text.find("Point.x"), std::string::npos);
  EXPECT_NE(Text.find("@T01"), std::string::npos);
  EXPECT_NE(Text.find("return"), std::string::npos);
}

TEST(VerifierTest, VerifyMethodChecksOneMethod) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("A");
  MethodId Good = B.startMethod(C, "good", 1);
  B.emitReturn();
  MethodId Bad = B.startMethod(C, "bad", 1);
  B.emitConst(1); // no terminator
  EXPECT_TRUE(verifyMethod(P, Good).empty());
  EXPECT_FALSE(verifyMethod(P, Bad).empty());
}

TEST(InstrTest, PEIClassification) {
  Instr I;
  I.Op = Opcode::GetField;
  EXPECT_TRUE(I.isPEI());
  I.Op = Opcode::Const;
  EXPECT_FALSE(I.isPEI());
  I.Op = Opcode::BinOp;
  I.BinKind = BinOpKind::Div;
  EXPECT_TRUE(I.isPEI());
  I.BinKind = BinOpKind::Add;
  EXPECT_FALSE(I.isPEI());
}

TEST(InstrTest, KillPointsForStaticWeakerFacts) {
  Instr I;
  I.Op = Opcode::Call;
  EXPECT_TRUE(I.killsStaticWeakerFacts());
  I.Op = Opcode::ThreadStart;
  EXPECT_TRUE(I.killsStaticWeakerFacts());
  I.Op = Opcode::ThreadJoin;
  EXPECT_TRUE(I.killsStaticWeakerFacts());
  I.Op = Opcode::GetField;
  EXPECT_FALSE(I.killsStaticWeakerFacts());
  I.Op = Opcode::MonitorEnter;
  EXPECT_FALSE(I.killsStaticWeakerFacts());
}

} // namespace
