//===- tests/cache_test.cpp - Access-cache unit tests ---------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the Section 4 runtime optimizer: direct-mapped lookup,
/// conflict eviction, per-lock LIFO eviction lists, and the forced eviction
/// used by the ownership interaction (Section 7.2).
///
//===----------------------------------------------------------------------===//

#include "detect/AccessCache.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

LocationKey keyOf(uint32_t Obj, uint32_t Field = 0) {
  return LocationKey::forField(ObjectId(Obj), FieldId(Field));
}

TEST(AccessCacheTest, MissThenHit) {
  AccessCache Cache;
  EXPECT_FALSE(Cache.lookup(keyOf(1)));
  Cache.insert(keyOf(1), LockId::invalid());
  EXPECT_TRUE(Cache.lookup(keyOf(1)));
  EXPECT_EQ(Cache.hits(), 1u);
  EXPECT_EQ(Cache.misses(), 1u);
}

TEST(AccessCacheTest, DistinctKeysAreIndependent) {
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId::invalid());
  EXPECT_FALSE(Cache.lookup(keyOf(2)));
  EXPECT_FALSE(Cache.lookup(keyOf(1, 1)));
}

TEST(AccessCacheTest, LockReleaseEvictsEntriesInsertedUnderIt) {
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId(7));
  Cache.insert(keyOf(2), LockId(7));
  Cache.insert(keyOf(3), LockId::invalid()); // lock-free: survives releases
  EXPECT_TRUE(Cache.lookup(keyOf(1)));
  Cache.evictLock(LockId(7));
  EXPECT_FALSE(Cache.lookup(keyOf(1)));
  EXPECT_FALSE(Cache.lookup(keyOf(2)));
  EXPECT_TRUE(Cache.lookup(keyOf(3)));
}

TEST(AccessCacheTest, ReleasingOtherLockKeepsEntries) {
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId(7));
  Cache.evictLock(LockId(8));
  EXPECT_TRUE(Cache.lookup(keyOf(1)));
}

TEST(AccessCacheTest, NestedLocksEvictInnermostListOnly) {
  // LIFO discipline: an entry made while {outer, inner} were held is tagged
  // with `inner`; releasing inner must evict it, because inner releases
  // first and the entry's lockset would otherwise stop being a subset of
  // the held locks.
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId(2)); // under {outer=1, inner=2}
  Cache.insert(keyOf(5), LockId(1)); // under {outer=1} only
  Cache.evictLock(LockId(2));        // inner released
  EXPECT_FALSE(Cache.lookup(keyOf(1)));
  EXPECT_TRUE(Cache.lookup(keyOf(5)));
  Cache.evictLock(LockId(1));
  EXPECT_FALSE(Cache.lookup(keyOf(5)));
}

TEST(AccessCacheTest, ConflictEvictionUnlinksFromLockList) {
  // Find two keys that collide in the direct-mapped table.
  AccessCache Cache;
  LocationKey First = keyOf(0);
  LocationKey Collider = First;
  bool Found = false;
  // Scan until a colliding key appears (the 8-bit index guarantees one
  // within a few hundred probes).
  for (uint32_t Obj = 1; Obj != 4096 && !Found; ++Obj) {
    LocationKey Candidate = keyOf(Obj);
    AccessCache Probe;
    Probe.insert(First, LockId::invalid());
    Probe.insert(Candidate, LockId::invalid());
    if (!Probe.lookup(First)) { // displaced: same slot
      Collider = Candidate;
      Found = true;
    }
  }
  ASSERT_TRUE(Found);

  Cache.insert(First, LockId(7));
  Cache.insert(Collider, LockId(7)); // displaces First, reuses the slot
  EXPECT_TRUE(Cache.lookup(Collider));
  EXPECT_FALSE(Cache.lookup(First));
  // The eviction list must not contain a stale node for First; releasing
  // the lock evicts only the live entry and must not corrupt the list.
  Cache.evictLock(LockId(7));
  EXPECT_FALSE(Cache.lookup(Collider));
}

TEST(AccessCacheTest, EvictKeyRemovesSingleEntry) {
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId(7));
  Cache.insert(keyOf(2), LockId(7));
  Cache.evictKey(keyOf(1));
  EXPECT_FALSE(Cache.lookup(keyOf(1)));
  EXPECT_TRUE(Cache.lookup(keyOf(2)));
  // The lock list stays consistent after the middle removal.
  Cache.evictLock(LockId(7));
  EXPECT_FALSE(Cache.lookup(keyOf(2)));
}

TEST(AccessCacheTest, EvictKeyOnAbsentKeyIsANoOp) {
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId::invalid());
  Cache.evictKey(keyOf(2));
  EXPECT_TRUE(Cache.lookup(keyOf(1)));
}

TEST(AccessCacheTest, ClearEmptiesEverything) {
  AccessCache Cache;
  for (uint32_t Obj = 0; Obj != 100; ++Obj)
    Cache.insert(keyOf(Obj), LockId(Obj % 3));
  Cache.clear();
  for (uint32_t Obj = 0; Obj != 100; ++Obj)
    EXPECT_FALSE(Cache.lookup(keyOf(Obj)));
}

TEST(AccessCacheTest, RandomizedOperationsPreserveListIntegrity) {
  // Randomized interleavings of every mutating operation, with the full
  // structural invariant re-checked after each step: list heads reach only
  // valid entries tagged with that lock, Prev/Next agree, no cycles, no
  // stale link state on evicted slots.  The key pool is small relative to
  // the 256 direct-mapped slots so conflict evictions are frequent.
  for (uint64_t Seed : {1ull, 7ull, 42ull, 1234ull}) {
    AccessCache Cache;
    Rng R(Seed);
    for (int Step = 0; Step != 5000; ++Step) {
      uint64_t Op = R.nextBelow(100);
      if (Op < 55) {
        LockId Lock = R.nextChance(1, 4)
                          ? LockId::invalid()
                          : LockId(uint32_t(R.nextBelow(6)));
        Cache.insert(keyOf(uint32_t(R.nextBelow(512))), Lock);
      } else if (Op < 70) {
        Cache.evictLock(LockId(uint32_t(R.nextBelow(6))));
      } else if (Op < 85) {
        Cache.evictKey(keyOf(uint32_t(R.nextBelow(512))));
      } else {
        Cache.lookup(keyOf(uint32_t(R.nextBelow(512))));
      }
      ASSERT_TRUE(Cache.checkListIntegrity())
          << "seed " << Seed << " step " << Step;
    }
    Cache.clear();
    ASSERT_TRUE(Cache.checkListIntegrity()) << "after clear, seed " << Seed;
  }
}

TEST(AccessCacheTest, ManyInsertionsUnderManyLocksStayConsistent) {
  // Stress the linked-list maintenance: interleave insertions under several
  // locks with conflict evictions, then release the locks one by one.
  AccessCache Cache;
  for (uint32_t Round = 0; Round != 8; ++Round)
    for (uint32_t Obj = 0; Obj != 600; ++Obj)
      Cache.insert(keyOf(Obj + Round), LockId(Obj % 5));
  for (uint32_t Lock = 0; Lock != 5; ++Lock)
    Cache.evictLock(LockId(Lock));
  for (uint32_t Obj = 0; Obj != 700; ++Obj)
    EXPECT_FALSE(Cache.lookup(keyOf(Obj)));
}

} // namespace
