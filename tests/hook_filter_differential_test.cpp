//===- tests/hook_filter_differential_test.cpp - L0 filter on vs off ------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equivalence lockdown for the hook-path fast path (docs/HOOKPATH.md):
/// `--hook-filter=off` is the reference semantics — every access event
/// travels the virtual RuntimeHooks path into the detection runtime — and
/// `--hook-filter=on` (the inline L0 access filter, devirtualized delivery
/// and batched sharded submission) must be observationally
/// indistinguishable from it.  Every program in the shared corpus plus a
/// slice of the fuzz generator runs with the filter on and off, under both
/// dispatch modes, serial and sharded, across schedule seeds, and must
/// produce byte-identical race reports, output, heaps, instruction counts
/// and recorded traces.  The L0 filter only ever suppresses events the
/// detector-side AccessCache would have absorbed, so even the detector's
/// input count must match exactly.
///
/// Also here: unit tests for detect/AccessFilter.h and the
/// AccessCache::provesRedundant predicate the filter's soundness leans on,
/// and the counter-reconciliation identity
/// (run.access_events == hook.filter_hits + runtime.events_seen) that
/// scripts/check_hook_gate.py enforces on benchmark artifacts.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "detect/AccessCache.h"
#include "detect/AccessFilter.h"
#include "herd/Pipeline.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace herd;
using fuzzprogs::generateProgram;

namespace {

//===----------------------------------------------------------------------===
// AccessFilter unit tests
//===----------------------------------------------------------------------===

LocationKey locKey(uint32_t Obj, uint32_t Field) {
  return LocationKey::forField(ObjectId(Obj), FieldId(Field));
}

TEST(AccessFilterTest, MissThenHitPerKind) {
  AccessFilter F;
  LocationKey K = locKey(1, 2);
  EXPECT_FALSE(F.probe(K, AccessKind::Read));
  F.insert(K, AccessKind::Read);
  EXPECT_TRUE(F.probe(K, AccessKind::Read));
  // Same location, other kind: the filter is exact per access kind, so a
  // write probe misses until a write is inserted.
  EXPECT_FALSE(F.probe(K, AccessKind::Write));
  F.insert(K, AccessKind::Write);
  EXPECT_TRUE(F.probe(K, AccessKind::Write));
  // The kind is folded into the slot index, so the write insert did not
  // displace the read entry: a load-then-store loop on one hot field keeps
  // both entries resident instead of thrashing a single slot.
  EXPECT_TRUE(F.probe(K, AccessKind::Read));
  EXPECT_EQ(F.hits(), 3u);
  EXPECT_EQ(F.misses(), 2u);
}

TEST(AccessFilterTest, EpochBumpInvalidatesEverything) {
  AccessFilter F;
  LocationKey A = locKey(1, 0), B = locKey(2, 0);
  F.insert(A, AccessKind::Read);
  F.insert(B, AccessKind::Write);
  ASSERT_TRUE(F.probe(A, AccessKind::Read));
  ASSERT_TRUE(F.probe(B, AccessKind::Write));
  F.bumpEpoch();
  EXPECT_FALSE(F.probe(A, AccessKind::Read));
  EXPECT_FALSE(F.probe(B, AccessKind::Write));
  EXPECT_EQ(F.epochBumps(), 1u);
  // Re-inserting after the bump works at the new epoch.
  F.insert(A, AccessKind::Read);
  EXPECT_TRUE(F.probe(A, AccessKind::Read));
}

TEST(AccessFilterTest, InvalidateKeyIsSurgical) {
  AccessFilter F;
  LocationKey A = locKey(1, 0), B = locKey(2, 0);
  F.insert(A, AccessKind::Read);
  F.insert(B, AccessKind::Read);
  F.invalidateKey(A);
  EXPECT_FALSE(F.probe(A, AccessKind::Read));
  EXPECT_TRUE(F.probe(B, AccessKind::Read));
  EXPECT_EQ(F.keyInvalidations(), 1u);
  // Invalidating a key the filter does not hold is a no-op.
  F.invalidateKey(locKey(99, 9));
  EXPECT_EQ(F.keyInvalidations(), 1u);
  // Both kind slots of a key drop together (one counted invalidation):
  // detector-side evictions are what trigger this, and they must never
  // leave a stale hit behind for either kind.
  F.insert(A, AccessKind::Read);
  F.insert(A, AccessKind::Write);
  F.invalidateKey(A);
  EXPECT_FALSE(F.holds(A, AccessKind::Read));
  EXPECT_FALSE(F.holds(A, AccessKind::Write));
  EXPECT_EQ(F.keyInvalidations(), 2u);
}

TEST(AccessCacheTest, ProvesRedundantHasNoSideEffects) {
  AccessCache C(16);
  LocationKey K = locKey(3, 1);
  EXPECT_FALSE(C.provesRedundant(K));
  EXPECT_EQ(C.hits() + C.misses(), 0u) << "the predicate must not count";
  C.insert(K, LockId());
  EXPECT_TRUE(C.provesRedundant(K));
  EXPECT_EQ(C.hits() + C.misses(), 0u);
  // lookup() agrees with the predicate and is the one that counts.
  EXPECT_TRUE(C.lookup(K));
  EXPECT_EQ(C.hits(), 1u);
}

TEST(AccessCacheTest, InsertReportsTheDisplacedKey) {
  AccessCache C(1); // every distinct key collides in a one-entry cache
  LocationKey A = locKey(1, 0), B = locKey(2, 0);
  EXPECT_FALSE(C.insert(A, LockId()).has_value());
  std::optional<LocationKey> Displaced = C.insert(B, LockId());
  ASSERT_TRUE(Displaced.has_value());
  EXPECT_EQ(*Displaced, A);
  // Re-inserting the resident key displaces nothing.
  EXPECT_FALSE(C.insert(B, LockId()).has_value());
}

//===----------------------------------------------------------------------===
// Pipeline-level equivalence: filter on vs off
//===----------------------------------------------------------------------===

std::vector<std::pair<std::string, Program>> namedCorpus() {
  std::vector<std::pair<std::string, Program>> Out;
  Out.emplace_back("counter-unlocked",
                   testprogs::buildCounter(/*Locked=*/false, 25).P);
  Out.emplace_back("counter-locked",
                   testprogs::buildCounter(/*Locked=*/true, 25).P);
  Out.emplace_back("figure2", testprogs::buildFigure2(/*SamePQ=*/false));
  Out.emplace_back("figure2-samepq",
                   testprogs::buildFigure2(/*SamePQ=*/true));
  Out.emplace_back("fig3-loop", testprogs::buildFig3Loop(40));
  return Out;
}

/// Asserts that a filter-on run is indistinguishable from the filter-off
/// reference.  Everything observable must match — including the detector's
/// own input count, because the L0 filter may only suppress events the
/// detector-side cache would have absorbed anyway.  Cache hit counters are
/// deliberately NOT compared: absorbed events migrate from the cache to
/// the filter, which is the point of the optimization.
void expectSameRun(const PipelineResult &Ref, const PipelineResult &Got,
                   const std::string &What) {
  SCOPED_TRACE(What);
  ASSERT_EQ(Ref.Run.Ok, Got.Run.Ok) << Got.Run.Error;
  EXPECT_EQ(Ref.Run.Error, Got.Run.Error);
  EXPECT_EQ(Ref.FormattedRaces, Got.FormattedRaces);
  EXPECT_EQ(Ref.FormattedDeadlocks, Got.FormattedDeadlocks);
  EXPECT_EQ(Ref.Run.Output, Got.Run.Output);
  EXPECT_EQ(Ref.Run.InstructionsExecuted, Got.Run.InstructionsExecuted);
  EXPECT_EQ(Ref.Run.AccessEvents, Got.Run.AccessEvents);
  EXPECT_EQ(Ref.Run.ContextSwitches, Got.Run.ContextSwitches);
  EXPECT_EQ(Ref.Run.ThreadsCreated, Got.Run.ThreadsCreated);
  EXPECT_EQ(Ref.Stats.Detector.EventsIn, Got.Stats.Detector.EventsIn);
  EXPECT_EQ(Ref.Stats.Detector.RacesReported,
            Got.Stats.Detector.RacesReported);
  EXPECT_EQ(Ref.Stats.Detector.OwnedFiltered,
            Got.Stats.Detector.OwnedFiltered);
  EXPECT_EQ(Ref.Stats.Detector.WeakerFiltered,
            Got.Stats.Detector.WeakerFiltered);
}

/// The counter-reconciliation identity for a filter-on run: every access
/// the interpreter emitted either hit the L0 filter or reached the
/// detection runtime.  Nothing is dropped, nothing is double-counted.
void expectCountersReconcile(const PipelineResult &R,
                             const std::string &What) {
  SCOPED_TRACE(What);
  EXPECT_TRUE(R.Stats.Hook.FilterEnabled);
  EXPECT_EQ(R.Run.AccessEvents,
            R.Stats.Hook.FilterHits + R.Stats.EventsSeen);
  EXPECT_EQ(R.Stats.Hook.FilterHits + R.Stats.Hook.FilterMisses,
            R.Run.AccessEvents)
      << "every emitted access must be probed exactly once";
}

/// Runs \p P with the filter off (reference) and on, in both dispatch
/// modes, and asserts equivalence along every axis.  Returns the total L0
/// hits so callers can assert the fast path actually engaged.
uint64_t runBothFilters(const Program &P, ToolConfig Config,
                        const std::string &What) {
  uint64_t FilterHits = 0;
  for (DispatchMode Mode : {DispatchMode::Switch, DispatchMode::Threaded}) {
    Config.Dispatch = Mode;
    std::string Tag =
        What + (Mode == DispatchMode::Switch ? " [switch]" : " [threaded]");

    Config.HookFilter = false;
    PipelineResult Ref = runPipeline(P, Config);
    EXPECT_FALSE(Ref.Stats.Hook.FilterEnabled);
    EXPECT_EQ(Ref.Stats.Hook.FilterHits, 0u);

    Config.HookFilter = true;
    PipelineResult On = runPipeline(P, Config);
    expectSameRun(Ref, On, Tag);
    if (Config.Instrument && Config.UseCache)
      expectCountersReconcile(On, Tag);
    FilterHits += On.Stats.Hook.FilterHits;
  }
  return FilterHits;
}

TEST(HookFilterDifferentialTest, NamedProgramsAllConfigs) {
  uint64_t FilterHits = 0;
  for (auto &[Name, P] : namedCorpus()) {
    for (uint64_t Seed : {1u, 13u}) {
      for (uint32_t Shards : {0u, 3u}) {
        ToolConfig Full = ToolConfig::full();
        Full.Seed = Seed;
        Full.Shards = Shards;
        FilterHits += runBothFilters(
            P, Full,
            Name + " full seed=" + std::to_string(Seed) +
                " shards=" + std::to_string(Shards));
      }
      // NoStatic: instrument every access and keep the in-loop traces, so
      // redundant accesses actually recur at runtime — this is where the
      // L0 filter earns its keep (the full config statically removes most
      // provably-redundant traces before the runtime ever sees them).
      ToolConfig NoStatic = ToolConfig::noStatic();
      NoStatic.StaticWeakerThan = false;
      NoStatic.LoopPeeling = false;
      NoStatic.Seed = Seed;
      FilterHits += runBothFilters(
          P, NoStatic, Name + " nostatic seed=" + std::to_string(Seed));

      // NoCache: the L0 filter loses its oracle and must disarm itself —
      // the run degenerates to devirtualized delivery only.
      ToolConfig NoCache = ToolConfig::noCache();
      NoCache.Seed = Seed;
      runBothFilters(P, NoCache,
                     Name + " nocache seed=" + std::to_string(Seed));
    }
  }
  EXPECT_GT(FilterHits, 0u)
      << "the corpus never engaged the L0 filter; the fast path went "
         "untested";
}

TEST(HookFilterDifferentialTest, MultiSinkConfigsDisableDevirtButAgree) {
  // With the deadlock detector attached the detection runtime is no longer
  // the sole sink, so the pipeline must fall back to (lazy) fanout
  // delivery — and results still match the filter-off reference.
  for (auto &[Name, P] : namedCorpus()) {
    ToolConfig Config = ToolConfig::full();
    Config.Seed = 7;
    Config.DetectDeadlocks = true;

    Config.HookFilter = false;
    PipelineResult Ref = runPipeline(P, Config);
    Config.HookFilter = true;
    PipelineResult On = runPipeline(P, Config);
    expectSameRun(Ref, On, Name + " deadlocks");
    // Access events bypass onAccessFast entirely on the fanout path, so
    // the L0 filter never fires.
    EXPECT_EQ(On.Stats.Hook.FilterHits, 0u);
  }
}

class HookFilterFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HookFilterFuzzTest, GeneratedProgramsAgree) {
  Program P = generateProgram(GetParam());
  for (uint64_t Seed : {1u, 13u}) {
    ToolConfig Full = ToolConfig::full();
    Full.Seed = Seed;
    runBothFilters(P, Full, "fuzz full seed=" + std::to_string(Seed));
  }
  ToolConfig Sharded = ToolConfig::full();
  Sharded.Seed = 7;
  Sharded.Shards = 3;
  runBothFilters(P, Sharded, "fuzz sharded");
}

INSTANTIATE_TEST_SUITE_P(Programs, HookFilterFuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

//===----------------------------------------------------------------------===
// Quantum edges: batching must never change a schedule
//===----------------------------------------------------------------------===

TEST(HookFilterDifferentialTest, QuantumEdgesStayIdentical) {
  // MaxQuantum=1 and 2 maximize flush pressure: the sharded runtime's
  // staging buffer sees a quantum boundary after nearly every event, so
  // any accounting drift between the staged and direct submit paths would
  // surface here.  The schedule itself is decided before events are
  // staged, so instruction counts and context switches must match the
  // unbatched reference exactly.
  uint64_t BatchedEvents = 0;
  for (auto &[Name, P] : namedCorpus()) {
    for (uint32_t MaxQ : {1u, 2u}) {
      for (uint32_t Shards : {0u, 2u}) {
        ToolConfig Config = ToolConfig::full();
        Config.Seed = 13;
        Config.MaxQuantum = MaxQ;
        Config.Shards = Shards;
        runBothFilters(P, Config,
                       Name + " maxq=" + std::to_string(MaxQ) +
                           " shards=" + std::to_string(Shards));
        Config.HookFilter = true;
        BatchedEvents += runPipeline(P, Config).Stats.Hook.BatchedEvents;
      }
    }
  }
  EXPECT_GT(BatchedEvents, 0u)
      << "no sharded run ever staged an event; the batch path went "
         "untested";
}

//===----------------------------------------------------------------------===
// Record/replay interop
//===----------------------------------------------------------------------===

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

TEST(HookFilterDifferentialTest, RecordedTracesKeepEveryEvent) {
  // Filtering applies to detector delivery, never to `--record`: with a
  // trace recorder attached the runtime is not the sole sink, so every
  // event travels the fanout path and the recorded bytes are identical
  // with the filter on and off.
  for (auto &[Name, P] : namedCorpus()) {
    std::string OnPath =
        ::testing::TempDir() + "herd_hookfilter_on_" + Name + ".trace";
    std::string OffPath =
        ::testing::TempDir() + "herd_hookfilter_off_" + Name + ".trace";

    ToolConfig Rec = ToolConfig::full();
    Rec.Seed = 21;
    Rec.HookFilter = true;
    Rec.RecordTracePath = OnPath;
    PipelineResult On = runPipeline(P, Rec);
    ASSERT_TRUE(On.Run.Ok && On.Trace.Ok) << On.Run.Error << On.Trace.Error;
    EXPECT_EQ(On.Stats.Hook.FilterHits, 0u)
        << "recording must disable the L0 filter so the trace is complete";

    Rec.HookFilter = false;
    Rec.RecordTracePath = OffPath;
    PipelineResult Off = runPipeline(P, Rec);
    ASSERT_TRUE(Off.Run.Ok && Off.Trace.Ok);

    EXPECT_EQ(On.TraceRecords, Off.TraceRecords);
    EXPECT_EQ(slurp(OnPath), slurp(OffPath))
        << Name << ": recorded traces differ with the filter on vs off";

    // Replaying the filter-on recording re-detects identically with the
    // filter on and off, serial and sharded (replay delivers events over
    // the virtual path; sharded replay still exercises batching).
    for (uint32_t Shards : {0u, 2u}) {
      ToolConfig Re = ToolConfig::full();
      Re.Seed = 99; // ignored: the trace is the event source
      Re.Shards = Shards;
      Re.HookFilter = false;
      PipelineResult RefReplay = replayTracePipeline(P, Re, OnPath);
      Re.HookFilter = true;
      PipelineResult OnReplay = replayTracePipeline(P, Re, OnPath);
      expectSameRun(RefReplay, OnReplay,
                    Name + " replay shards=" + std::to_string(Shards));
      // Replay has no heap, so formatted reports degrade to object
      // indices; the detected race set itself must match the live run.
      EXPECT_EQ(RefReplay.Stats.Detector.RacesReported,
                On.Stats.Detector.RacesReported)
          << Name << ": replay must reproduce the live run's races";
      EXPECT_EQ(RefReplay.FormattedRaces.size(), On.FormattedRaces.size());
    }
    std::remove(OnPath.c_str());
    std::remove(OffPath.c_str());
  }
}

} // namespace
