//===- tests/analysis_extra_test.cpp - More static-analysis coverage ------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Additional static-analysis coverage: arrays in points-to/escape and the
/// race set, recursion through the sync context, multi-alias conflicts,
/// static fields as race-set members, and instrumentation interplay on
/// nested loops.
///
//===----------------------------------------------------------------------===//

#include "analysis/Escape.h"
#include "analysis/PointsTo.h"
#include "analysis/SingleInstance.h"
#include "analysis/StaticRace.h"
#include "analysis/SyncAnalysis.h"
#include "instr/Instrumenter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

InstrRef findBySite(const Program &P, Opcode Op, std::string_view Label) {
  for (size_t MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M{uint32_t(MI)};
    const Method &Body = P.method(M);
    for (size_t BI = 0; BI != Body.Blocks.size(); ++BI)
      for (size_t II = 0; II != Body.Blocks[BI].Instrs.size(); ++II) {
        const Instr &I = Body.Blocks[BI].Instrs[II];
        if (I.Op == Op && I.Site.isValid() &&
            P.Names.text(P.site(I.Site).Label) == Label)
          return InstrRef{M, BlockId(uint32_t(BI)), uint32_t(II)};
      }
  }
  ADD_FAILURE() << "no instruction @" << Label;
  return InstrRef{};
}

TEST(PointsToArraysTest, ElementsFlowThroughArrays) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  B.startMain();
  RegId Arr = B.emitNewArray(B.emitConst(4)); // site 0
  RegId Obj = B.emitNew(Box);                 // site 1
  RegId Zero = B.emitConst(0);
  B.emitAStore(Arr, Zero, Obj);
  RegId Out = B.emitALoad(Arr, Zero);
  B.emitPrint(Out);
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  EXPECT_EQ(PT.elementPointsTo(AllocSiteId(0)), (ObjSet{AllocSiteId(1)}));
  EXPECT_EQ(PT.pointsTo(P.MainMethod, Out), (ObjSet{AllocSiteId(1)}));
}

TEST(EscapeArraysTest, ObjectsEscapeThroughSharedArrays) {
  // An object stored into an array reachable from a started thread escapes
  // transitively (array element closure in the escape fixpoint).
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  ClassId Worker = B.makeClass("Worker");
  FieldId WArr = B.makeField(Worker, "items");
  B.startMethod(Worker, "run", 1);
  {
    RegId Arr = B.emitGetField(B.thisReg(), WArr);
    RegId Item = B.emitALoad(Arr, B.emitConst(0));
    B.emitPrint(B.emitGetField(Item, F));
    B.emitReturn();
  }
  B.startMain();
  RegId Arr = B.emitNewArray(B.emitConst(2)); // site 0
  RegId Obj = B.emitNew(Box);                 // site 1
  B.emitAStore(Arr, B.emitConst(0), Obj);
  RegId W = B.emitNew(Worker);                // site 2
  B.emitPutField(W, WArr, Arr);
  B.emitThreadStart(W);
  // A second object never placed anywhere shared stays local.
  RegId Local = B.emitNew(Box); // site 3
  B.emitPutField(Local, F, B.emitConst(1));
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  EscapeAnalysis EA(P, PT);
  EA.run();
  EXPECT_TRUE(EA.escapes(AllocSiteId(0))); // the array
  EXPECT_TRUE(EA.escapes(AllocSiteId(1))); // the boxed element
  EXPECT_TRUE(EA.escapes(AllocSiteId(2))); // the thread object
  EXPECT_FALSE(EA.escapes(AllocSiteId(3)));
}

TEST(StaticRaceArraysTest, SharedArrayWritesAreInTheRaceSet) {
  Program P;
  IRBuilder B(P);
  ClassId Worker = B.makeClass("Worker");
  FieldId WArr = B.makeField(Worker, "data");
  B.startMethod(Worker, "run", 1);
  {
    RegId Arr = B.emitGetField(B.thisReg(), WArr);
    B.site("ARRW");
    B.emitAStore(Arr, B.emitConst(0), B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId Arr = B.emitNewArray(B.emitConst(4));
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  B.emitPutField(W1, WArr, Arr);
  B.emitPutField(W2, WArr, Arr);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitReturn();

  StaticRaceAnalysis SRA(P);
  SRA.run();
  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::AStore, "ARRW")));
}

TEST(StaticRaceArraysTest, DisjointArraysAreNot) {
  // Each worker gets its own array: may points-to sets do not intersect,
  // so the writes cannot conflict.
  Program P;
  IRBuilder B(P);
  ClassId Worker = B.makeClass("Worker");
  FieldId WArr = B.makeField(Worker, "data");
  B.startMethod(Worker, "run", 1);
  {
    RegId Arr = B.emitGetField(B.thisReg(), WArr);
    B.site("ARRW2");
    B.emitAStore(Arr, B.emitConst(0), B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  // IMPORTANT: two distinct allocation sites.
  RegId Arr1 = B.emitNewArray(B.emitConst(4));
  RegId Arr2 = B.emitNewArray(B.emitConst(4));
  B.emitPutField(W1, WArr, Arr1);
  B.emitPutField(W2, WArr, Arr2);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitReturn();

  StaticRaceAnalysis SRA(P);
  SRA.run();
  // The arrays are write-shared per worker but the may points-to of run's
  // array load is {site1, site2} for BOTH workers (one run method), so
  // conservatively this IS in the race set — the analysis cannot separate
  // the two thread instances.  Verify the conservative answer, and that
  // making the workers different classes separates them.
  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::AStore, "ARRW2")));

  Program P2;
  IRBuilder B2(P2);
  ClassId WorkerA = B2.makeClass("WorkerA");
  FieldId ArrA = B2.makeField(WorkerA, "data");
  ClassId WorkerB = B2.makeClass("WorkerB");
  FieldId ArrB = B2.makeField(WorkerB, "data");
  B2.startMethod(WorkerA, "run", 1);
  {
    RegId Arr = B2.emitGetField(B2.thisReg(), ArrA);
    B2.site("WA");
    B2.emitAStore(Arr, B2.emitConst(0), B2.emitConst(1));
    B2.emitReturn();
  }
  B2.startMethod(WorkerB, "run", 1);
  {
    RegId Arr = B2.emitGetField(B2.thisReg(), ArrB);
    B2.site("WB");
    B2.emitAStore(Arr, B2.emitConst(0), B2.emitConst(1));
    B2.emitReturn();
  }
  B2.startMain();
  RegId W1b = B2.emitNew(WorkerA);
  RegId W2b = B2.emitNew(WorkerB);
  RegId Arr1b = B2.emitNewArray(B2.emitConst(4));
  RegId Arr2b = B2.emitNewArray(B2.emitConst(4));
  B2.emitPutField(W1b, ArrA, Arr1b);
  B2.emitPutField(W2b, ArrB, Arr2b);
  B2.emitThreadStart(W1b);
  B2.emitThreadStart(W2b);
  B2.emitReturn();

  StaticRaceAnalysis SRA2(P2);
  SRA2.run();
  // Distinct classes, distinct arrays, single-threaded per array, and
  // each run() is a single-instance thread: both writes are race-free.
  EXPECT_FALSE(SRA2.isInRaceSet(findBySite(P2, Opcode::AStore, "WA")));
  EXPECT_FALSE(SRA2.isInRaceSet(findBySite(P2, Opcode::AStore, "WB")));
}

TEST(SyncRecursionTest, RecursiveMethodKeepsItsContext) {
  // A recursive method called only under a single-instance lock keeps the
  // lock in its context across the recursion (the fixpoint must not lose
  // it through the self-call).
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId G = B.makeClass("G");
  FieldId Data = B.makeStaticField(G, "data");
  ClassId Box = B.makeClass("Box");
  MethodId Rec = B.startMethod(Box, "rec", 2);
  {
    RegId N = B.param(1);
    B.site("REC_WRITE");
    B.emitPutStatic(Data, N);
    RegId Positive = B.emitBinOp(BinOpKind::CmpGt, N, B.emitConst(0));
    B.ifThen(Positive, [&] {
      RegId NMinus = B.emitBinOp(BinOpKind::Sub, N, B.emitConst(1));
      B.emitCallVoid(Rec, {B.thisReg(), NMinus});
    });
    B.emitReturn();
  }
  B.startMain();
  RegId LockObj = B.emitNew(LockCls);
  RegId Recv = B.emitNew(Box);
  RegId Three = B.emitConst(3);
  B.sync(LockObj, [&] { B.emitCallVoid(Rec, {Recv, Three}); });
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  SyncAnalysis SA(P, PT, SI);
  SA.run();
  InstrRef W = findBySite(P, Opcode::PutStatic, "REC_WRITE");
  EXPECT_FALSE(SA.mustSync(W).empty())
      << "recursive calls under the lock keep the lock in context";
}

TEST(InstrNestedLoopsTest, PeelingNestedLoopsPreservesSemantics) {
  // A doubly-nested loop with traces in the inner body; peel + eliminate,
  // then check output equality and event reduction.
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId N = B.emitConst(6);
  B.forLoop(0, N, 1, [&](RegId I) {
    B.forLoop(0, N, 1, [&](RegId J) {
      RegId Cur = B.emitGetField(Obj, F);
      RegId Sum = B.emitBinOp(BinOpKind::Add, Cur,
                              B.emitBinOp(BinOpKind::Mul, I, J));
      B.emitPutField(Obj, F, Sum);
    });
  });
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();

  Interpreter Plain(P, nullptr, InterpOptions{});
  InterpResult Expected = Plain.run();
  ASSERT_TRUE(Expected.Ok);

  InstrumenterOptions Opts;
  Opts.UseStaticRaceSet = false;
  Opts.StaticWeakerThan = true;
  Opts.LoopPeeling = true;
  InstrumenterStats Stats = instrumentProgram(P, Opts, nullptr);
  ASSERT_TRUE(verifyProgram(P).empty());
  EXPECT_GE(Stats.LoopsPeeled, 1u);

  struct Counter : RuntimeHooks {
    uint64_t Events = 0;
    void onAccess(ThreadId, LocationKey, AccessKind, SiteId) override {
      ++Events;
    }
  } Hooks;
  Interpreter Instrumented(P, &Hooks, InterpOptions{});
  InterpResult Got = Instrumented.run();
  ASSERT_TRUE(Got.Ok) << Got.Error;
  EXPECT_EQ(Got.Output, Expected.Output);
  // 6x6 iterations would emit 72+ events untraced; peeling+elim shrinks
  // the inner loop's contribution.
  EXPECT_LT(Hooks.Events, 72u);
}

TEST(StaticFieldRaceTest, TwoThreadClassesOnOneStaticField) {
  Program P;
  IRBuilder B(P);
  ClassId G = B.makeClass("G");
  FieldId S = B.makeStaticField(G, "shared");
  ClassId WA = B.makeClass("WA");
  ClassId WB = B.makeClass("WB");
  B.startMethod(WA, "run", 1);
  {
    B.site("WA_WRITE");
    B.emitPutStatic(S, B.emitConst(1));
    B.emitReturn();
  }
  B.startMethod(WB, "run", 1);
  {
    B.site("WB_READ");
    B.emitPrint(B.emitGetStatic(S));
    B.emitReturn();
  }
  B.startMain();
  RegId A = B.emitNew(WA);
  RegId Bo = B.emitNew(WB);
  B.emitThreadStart(A);
  B.emitThreadStart(Bo);
  B.emitReturn();

  StaticRaceAnalysis SRA(P);
  SRA.run();
  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::PutStatic, "WA_WRITE")));
  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::GetStatic, "WB_READ")));
  // And the partner query returns the other side.
  auto Partners =
      SRA.mayRaceWith(findBySite(P, Opcode::PutStatic, "WA_WRITE"));
  EXPECT_FALSE(Partners.empty());
}

} // namespace
