//===- tests/analysis_test.cpp - Static analysis tests --------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for Section 5: CFG utilities, may points-to, single-instance /
/// must points-to, MustSameThread, MustCommonSync, escape analysis, and
/// the combined static datarace set.
///
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "analysis/Escape.h"
#include "analysis/PointsTo.h"
#include "analysis/SingleInstance.h"
#include "analysis/StaticRace.h"
#include "analysis/SyncAnalysis.h"
#include "analysis/ThreadAnalysis.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "TestPrograms.h"

#include <gtest/gtest.h>

using namespace herd;
using namespace herd::testprogs;

namespace {

/// Finds the first instruction with opcode \p Op whose site label is
/// \p Label; aborts the test if absent.
InstrRef findBySite(const Program &P, Opcode Op, std::string_view Label) {
  for (size_t MI = 0; MI != P.numMethods(); ++MI) {
    MethodId M{uint32_t(MI)};
    const Method &Body = P.method(M);
    for (size_t BI = 0; BI != Body.Blocks.size(); ++BI)
      for (size_t II = 0; II != Body.Blocks[BI].Instrs.size(); ++II) {
        const Instr &I = Body.Blocks[BI].Instrs[II];
        if (I.Op == Op && I.Site.isValid() &&
            P.Names.text(P.site(I.Site).Label) == Label)
          return InstrRef{M, BlockId(uint32_t(BI)), uint32_t(II)};
      }
  }
  ADD_FAILURE() << "no instruction @" << Label;
  return InstrRef{};
}

//===----------------------------------------------------------------------===
// CFG.
//===----------------------------------------------------------------------===

TEST(CFGTest, DiamondDominators) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId C = B.emitConst(1);
  B.ifThenElse(
      C, [&] { B.emitPrint(B.emitConst(1)); },
      [&] { B.emitPrint(B.emitConst(2)); });
  B.emitReturn();
  CFG Cfg(P, P.MainMethod);
  // Blocks: 0 entry, 1 then, 2 else, 3 join.
  EXPECT_TRUE(Cfg.dominates(BlockId(0), BlockId(1)));
  EXPECT_TRUE(Cfg.dominates(BlockId(0), BlockId(3)));
  EXPECT_FALSE(Cfg.dominates(BlockId(1), BlockId(3)));
  EXPECT_FALSE(Cfg.dominates(BlockId(2), BlockId(3)));
  EXPECT_EQ(Cfg.immediateDominator(BlockId(3)), BlockId(0));
  EXPECT_TRUE(Cfg.loops().empty());
}

TEST(CFGTest, WhileLoopDiscovered) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId N = B.emitConst(3);
  B.forLoop(0, N, 1, [&](RegId I) { B.emitPrint(I); });
  B.emitReturn();
  CFG Cfg(P, P.MainMethod);
  ASSERT_EQ(Cfg.loops().size(), 1u);
  const CFG::Loop &L = Cfg.loops()[0];
  EXPECT_TRUE(L.contains(L.Header));
  EXPECT_GE(L.Blocks.size(), 2u);
  EXPECT_TRUE(Cfg.isInLoop(L.Header));
  EXPECT_FALSE(Cfg.isInLoop(BlockId(0)));
}

TEST(CFGTest, NestedLoopsBothFound) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId N = B.emitConst(3);
  B.forLoop(0, N, 1, [&](RegId) {
    B.forLoop(0, N, 1, [&](RegId J) { B.emitPrint(J); });
  });
  B.emitReturn();
  CFG Cfg(P, P.MainMethod);
  EXPECT_EQ(Cfg.loops().size(), 2u);
}

TEST(CFGTest, UnreachableBlockExcluded) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  B.emitReturn();
  BlockId Dead = B.newBlock();
  B.setBlock(Dead);
  B.emitReturn();
  CFG Cfg(P, P.MainMethod);
  EXPECT_TRUE(Cfg.isReachable(BlockId(0)));
  EXPECT_FALSE(Cfg.isReachable(Dead));
  EXPECT_EQ(Cfg.reversePostOrder().size(), 1u);
}

//===----------------------------------------------------------------------===
// Points-to.
//===----------------------------------------------------------------------===

TEST(PointsToTest, AllocationAndCopyFlow) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "ref");
  B.startMain();
  RegId A = B.emitNew(Box);   // site 0
  RegId C = B.emitNew(Box);   // site 1
  RegId Copy = B.emitMove(A);
  B.emitPutField(C, F, Copy); // site1.ref -> {site0}
  RegId Loaded = B.emitGetField(C, F);
  B.emitPrint(Loaded);
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  MethodId Main = P.MainMethod;
  EXPECT_EQ(PT.pointsTo(Main, A), (ObjSet{AllocSiteId(0)}));
  EXPECT_EQ(PT.pointsTo(Main, Copy), (ObjSet{AllocSiteId(0)}));
  EXPECT_EQ(PT.fieldPointsTo(AllocSiteId(1), F), (ObjSet{AllocSiteId(0)}));
  EXPECT_EQ(PT.pointsTo(Main, Loaded), (ObjSet{AllocSiteId(0)}));
}

TEST(PointsToTest, CallsTransferArgumentsAndReturns) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  MethodId Id = B.startMethod(Box, "identity", 2);
  B.emitReturn(B.param(1));
  B.startMain();
  RegId Recv = B.emitNew(Box); // site 0
  RegId Arg = B.emitNew(Box);  // site 1
  RegId Ret = B.emitCall(Id, {Recv, Arg});
  B.emitPrint(Ret);
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  EXPECT_TRUE(PT.isMethodReachable(Id));
  EXPECT_EQ(PT.pointsTo(Id, RegId(1)), (ObjSet{AllocSiteId(1)}));
  EXPECT_EQ(PT.pointsTo(P.MainMethod, Ret), (ObjSet{AllocSiteId(1)}));
}

TEST(PointsToTest, ThreadStartTransfersThis) {
  CounterProgram CP = buildCounter(true, 5);
  PointsToAnalysis PT(CP.P);
  PT.run();
  ASSERT_EQ(PT.startedRunMethods().size(), 1u);
  MethodId Run = PT.startedRunMethods()[0];
  EXPECT_EQ(Run, CP.Run);
  // Both worker allocation sites flow into run's `this`.
  EXPECT_EQ(PT.pointsTo(Run, RegId(0)).size(), 2u);
  EXPECT_TRUE(PT.isMethodReachable(Run));
}

TEST(PointsToTest, UnreachableMethodStaysUnreachable) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  MethodId Dead = B.startMethod(Box, "dead", 1);
  B.emitReturn();
  B.startMain();
  B.emitReturn();
  PointsToAnalysis PT(P);
  PT.run();
  EXPECT_FALSE(PT.isMethodReachable(Dead));
  EXPECT_TRUE(PT.isMethodReachable(P.MainMethod));
}

TEST(PointsToTest, StaticFieldsFlowGlobally) {
  Program P;
  IRBuilder B(P);
  ClassId G = B.makeClass("G");
  FieldId S = B.makeStaticField(G, "shared");
  B.startMain();
  RegId Obj = B.emitNew(G); // site 0
  B.emitPutStatic(S, Obj);
  RegId Back = B.emitGetStatic(S);
  B.emitPrint(Back);
  B.emitReturn();
  PointsToAnalysis PT(P);
  PT.run();
  EXPECT_EQ(PT.staticFieldPointsTo(S), (ObjSet{AllocSiteId(0)}));
  EXPECT_EQ(PT.pointsTo(P.MainMethod, Back), (ObjSet{AllocSiteId(0)}));
}

//===----------------------------------------------------------------------===
// Single-instance / must points-to.
//===----------------------------------------------------------------------===

TEST(SingleInstanceTest, MainIsOnceAllocInLoopIsNot) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  B.startMain();
  RegId Single = B.emitNew(Box); // site 0: straight-line in main
  B.emitPrint(Single);
  RegId N = B.emitConst(3);
  B.forLoop(0, N, 1, [&](RegId) {
    RegId Looped = B.emitNew(Box); // site 1: inside a loop
    B.emitPrint(Looped);
  });
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  EXPECT_TRUE(SI.methodAtMostOnce(P.MainMethod));
  EXPECT_TRUE(SI.isSingleInstanceSite(AllocSiteId(0)));
  EXPECT_FALSE(SI.isSingleInstanceSite(AllocSiteId(1)));
  EXPECT_EQ(SI.mustPointsTo(P.MainMethod, Single),
            (ObjSet{AllocSiteId(0)}));
}

TEST(SingleInstanceTest, HelperCalledOnceIsOnce) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  MethodId Helper = B.startMethod(Box, "helper", 1);
  {
    RegId Inner = B.emitNew(Box); // site 0 (helper runs once)
    B.emitPrint(Inner);
    B.emitReturn();
  }
  MethodId Twice = B.startMethod(Box, "twice", 1);
  {
    RegId Inner = B.emitNew(Box); // site 1 (twice runs twice)
    B.emitPrint(Inner);
    B.emitReturn();
  }
  B.startMain();
  RegId Obj = B.emitNew(Box); // site 2
  B.emitCallVoid(Helper, {Obj});
  B.emitCallVoid(Twice, {Obj});
  B.emitCallVoid(Twice, {Obj});
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  EXPECT_TRUE(SI.methodAtMostOnce(Helper));
  EXPECT_FALSE(SI.methodAtMostOnce(Twice));
  EXPECT_TRUE(SI.isSingleInstanceSite(AllocSiteId(0)));
  EXPECT_FALSE(SI.isSingleInstanceSite(AllocSiteId(1)));
}

TEST(SingleInstanceTest, RecursiveMethodIsNotOnce) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  MethodId Rec = B.startMethod(Box, "rec", 2);
  {
    RegId N = B.param(1);
    RegId Zero = B.emitConst(0);
    RegId Stop = B.emitBinOp(BinOpKind::CmpLe, N, Zero);
    B.ifThen(Stop, [&] { B.emitReturn(); });
    RegId NMinus = B.emitBinOp(BinOpKind::Sub, N, B.emitConst(1));
    B.emitCallVoid(Rec, {B.thisReg(), NMinus});
    B.emitReturn();
  }
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId Three = B.emitConst(3);
  B.emitCallVoid(Rec, {Obj, Three});
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  EXPECT_FALSE(SI.methodAtMostOnce(Rec));
}

//===----------------------------------------------------------------------===
// MustSameThread.
//===----------------------------------------------------------------------===

TEST(ThreadAnalysisTest, MainOnlyMethodsShareTheMainThread) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  MethodId Helper = B.startMethod(Box, "helper", 1);
  B.emitReturn();
  B.startMain();
  RegId Obj = B.emitNew(Box);
  B.emitCallVoid(Helper, {Obj});
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  ThreadAnalysis TA(P, PT, SI);
  TA.run();
  EXPECT_TRUE(TA.mustSameThread(P.MainMethod, Helper));
  EXPECT_TRUE(TA.mustSameThread(Helper, Helper));
}

TEST(ThreadAnalysisTest, MainAndStartedRunDiffer) {
  CounterProgram CP = buildCounter(true, 3);
  PointsToAnalysis PT(CP.P);
  PT.run();
  SingleInstanceAnalysis SI(CP.P, PT);
  SI.run();
  ThreadAnalysis TA(CP.P, PT, SI);
  TA.run();
  EXPECT_FALSE(TA.mustSameThread(CP.P.MainMethod, CP.Run));
  // Two workers share run(): the two dynamic threads are distinct, so run
  // must NOT be same-thread with itself.
  EXPECT_FALSE(TA.mustSameThread(CP.Run, CP.Run));
}

TEST(ThreadAnalysisTest, SingleThreadObjectRunIsSelfSame) {
  // One worker only: run's this has a must points-to, so run is always the
  // same (single) thread.
  Program P;
  IRBuilder B(P);
  ClassId Worker = B.makeClass("Worker");
  FieldId V = B.makeField(Worker, "v");
  MethodId Run = B.startMethod(Worker, "run", 1);
  {
    B.emitPutField(B.thisReg(), V, B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId W = B.emitNew(Worker);
  B.emitThreadStart(W);
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  ThreadAnalysis TA(P, PT, SI);
  TA.run();
  EXPECT_TRUE(TA.mustSameThread(Run, Run));
  EXPECT_FALSE(TA.mustSameThread(P.MainMethod, Run));
}

//===----------------------------------------------------------------------===
// MustCommonSync.
//===----------------------------------------------------------------------===

TEST(SyncAnalysisTest, CommonSingleInstanceLockDetected) {
  // Two sites synchronize on the same single-instance static lock object.
  Program P;
  IRBuilder B(P);
  ClassId G = B.makeClass("G");
  FieldId LockF = B.makeStaticField(G, "lock");
  FieldId Data = B.makeStaticField(G, "data");
  ClassId LockCls = B.makeClass("L");

  ClassId Worker = B.makeClass("Worker");
  B.startMethod(Worker, "run", 1);
  {
    RegId L = B.emitGetStatic(LockF);
    B.sync(L, [&] {
      B.site("WR1");
      B.emitPutStatic(Data, B.emitConst(1));
    });
    B.emitReturn();
  }
  B.startMain();
  RegId LockObj = B.emitNew(LockCls);
  B.emitPutStatic(LockF, LockObj);
  RegId W = B.emitNew(Worker);
  B.emitThreadStart(W);
  RegId L = B.emitGetStatic(LockF);
  B.sync(L, [&] {
    B.site("WR2");
    B.emitPutStatic(Data, B.emitConst(2));
  });
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  SyncAnalysis SA(P, PT, SI);
  SA.run();
  InstrRef W1 = findBySite(P, Opcode::PutStatic, "WR1");
  InstrRef W2 = findBySite(P, Opcode::PutStatic, "WR2");
  EXPECT_FALSE(SA.mustSync(W1).empty());
  EXPECT_TRUE(SA.mustCommonSync(W1, W2));
}

TEST(SyncAnalysisTest, MultiInstanceLockGivesNoMustSync) {
  // The lock object is allocated in a loop: no must points-to, so no
  // MustSync facts (a may approximation here would be unsound, Sec 5.1).
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId G = B.makeClass("G");
  FieldId Data = B.makeStaticField(G, "data");
  B.startMain();
  RegId N = B.emitConst(2);
  B.forLoop(0, N, 1, [&](RegId) {
    RegId LockObj = B.emitNew(LockCls);
    B.sync(LockObj, [&] {
      B.site("WR");
      B.emitPutStatic(Data, B.emitConst(1));
    });
  });
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  SyncAnalysis SA(P, PT, SI);
  SA.run();
  InstrRef W = findBySite(P, Opcode::PutStatic, "WR");
  EXPECT_TRUE(SA.mustSync(W).empty());
}

TEST(SyncAnalysisTest, CalleeInheritsCallersLocks) {
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId G = B.makeClass("G");
  FieldId Data = B.makeStaticField(G, "data");
  ClassId Box = B.makeClass("Box");
  MethodId Callee = B.startMethod(Box, "callee", 1);
  {
    B.site("IN_CALLEE");
    B.emitPutStatic(Data, B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId LockObj = B.emitNew(LockCls);
  RegId Recv = B.emitNew(Box);
  B.sync(LockObj, [&] { B.emitCallVoid(Callee, {Recv}); });
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  SyncAnalysis SA(P, PT, SI);
  SA.run();
  InstrRef W = findBySite(P, Opcode::PutStatic, "IN_CALLEE");
  EXPECT_FALSE(SA.mustSync(W).empty());
}

TEST(SyncAnalysisTest, ContextIsIntersectionOverCallSites) {
  // Called once with the lock and once without: no guaranteed lock.
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId G = B.makeClass("G");
  FieldId Data = B.makeStaticField(G, "data");
  ClassId Box = B.makeClass("Box");
  MethodId Callee = B.startMethod(Box, "callee", 1);
  {
    B.site("IN_CALLEE2");
    B.emitPutStatic(Data, B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId LockObj = B.emitNew(LockCls);
  RegId Recv = B.emitNew(Box);
  B.sync(LockObj, [&] { B.emitCallVoid(Callee, {Recv}); });
  B.emitCallVoid(Callee, {Recv}); // unlocked call
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  SyncAnalysis SA(P, PT, SI);
  SA.run();
  InstrRef W = findBySite(P, Opcode::PutStatic, "IN_CALLEE2");
  EXPECT_TRUE(SA.mustSync(W).empty());
}

TEST(SyncAnalysisTest, SynchronizedMethodGuardsItsBody) {
  Program P;
  IRBuilder B(P);
  ClassId G = B.makeClass("G");
  FieldId Data = B.makeStaticField(G, "data");
  ClassId Box = B.makeClass("Box");
  MethodId SyncM = B.startMethod(Box, "locked", 1, /*IsStatic=*/false,
                                 /*IsSynchronized=*/true);
  {
    B.site("IN_SYNC");
    B.emitPutStatic(Data, B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId Recv = B.emitNew(Box); // single-instance receiver
  B.emitCallVoid(SyncM, {Recv});
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  SingleInstanceAnalysis SI(P, PT);
  SI.run();
  SyncAnalysis SA(P, PT, SI);
  SA.run();
  InstrRef W = findBySite(P, Opcode::PutStatic, "IN_SYNC");
  EXPECT_FALSE(SA.mustSync(W).empty());
}

//===----------------------------------------------------------------------===
// Escape analysis.
//===----------------------------------------------------------------------===

TEST(EscapeTest, LocalObjectDoesNotEscape) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box); // site 0: purely local
  B.emitPutField(Obj, F, B.emitConst(1));
  B.emitReturn();
  PointsToAnalysis PT(P);
  PT.run();
  EscapeAnalysis EA(P, PT);
  EA.run();
  EXPECT_FALSE(EA.escapes(AllocSiteId(0)));
}

TEST(EscapeTest, StaticFieldAndThreadReachabilityEscape) {
  CounterProgram CP = buildCounter(true, 1);
  PointsToAnalysis PT(CP.P);
  PT.run();
  EscapeAnalysis EA(CP.P, PT);
  EA.run();
  // Sites: 0 = Shared (reachable from worker fields), 1/2 = workers
  // (started threads).  All three escape.
  EXPECT_TRUE(EA.escapes(AllocSiteId(0)));
  EXPECT_TRUE(EA.escapes(AllocSiteId(1)));
  EXPECT_TRUE(EA.escapes(AllocSiteId(2)));
}

TEST(EscapeTest, ThreadSpecificFieldRecognized) {
  // A worker's scratch field written only by run() via `this`.
  Program P;
  IRBuilder B(P);
  ClassId Worker = B.makeClass("Worker");
  FieldId Scratch = B.makeField(Worker, "scratch");
  MethodId Helper = B.startMethod(Worker, "helper", 1);
  {
    RegId Cur = B.emitGetField(B.thisReg(), Scratch);
    B.emitPutField(B.thisReg(), Scratch,
                   B.emitBinOp(BinOpKind::Add, Cur, B.emitConst(1)));
    B.emitReturn();
  }
  MethodId Run = B.startMethod(Worker, "run", 1);
  {
    B.emitPutField(B.thisReg(), Scratch, B.emitConst(0));
    B.emitCallVoid(Helper, {B.thisReg()});
    B.emitReturn();
  }
  B.startMain();
  RegId W = B.emitNew(Worker);
  B.emitThreadStart(W);
  B.emitReturn();

  PointsToAnalysis PT(P);
  PT.run();
  EscapeAnalysis EA(P, PT);
  EA.run();
  EXPECT_TRUE(EA.isThreadSpecificMethod(Run));
  EXPECT_TRUE(EA.isThreadSpecificMethod(Helper));
  EXPECT_TRUE(EA.isThreadSpecificField(Scratch));
}

TEST(EscapeTest, FieldTouchedByParentIsNotThreadSpecific) {
  CounterProgram CP = buildCounter(true, 1);
  PointsToAnalysis PT(CP.P);
  PT.run();
  EscapeAnalysis EA(CP.P, PT);
  EA.run();
  // Worker.target is written by main: not thread-specific.
  FieldId Target = CP.P.findField(CP.P.findClass("Worker"), "target");
  ASSERT_TRUE(Target.isValid());
  EXPECT_FALSE(EA.isThreadSpecificField(Target));
}

//===----------------------------------------------------------------------===
// The static datarace set.
//===----------------------------------------------------------------------===

TEST(StaticRaceTest, Figure2SetContainsAllFAccessesOnly) {
  FieldId F, G;
  Program P = buildFigure2(false, &F, &G);
  ASSERT_TRUE(verifyProgram(P).empty());
  StaticRaceAnalysis SRA(P);
  SRA.run();

  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::PutField, "T01")));
  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::PutField, "T11")));
  EXPECT_TRUE(SRA.isInRaceSet(findBySite(P, Opcode::PutField, "T21")));
  // The g-write at T14 conflicts only with itself, within one thread:
  // locate the PutField with field G and check it is not in the set.
  bool FoundGWrite = false;
  for (size_t MI = 0; MI != P.numMethods(); ++MI)
    for (size_t BI = 0; BI != P.method(MethodId{uint32_t(MI)}).Blocks.size();
         ++BI) {
      const auto &Instrs =
          P.method(MethodId{uint32_t(MI)}).Blocks[BI].Instrs;
      for (size_t II = 0; II != Instrs.size(); ++II)
        if (Instrs[II].Op == Opcode::PutField && Instrs[II].Field == G) {
          FoundGWrite = true;
          EXPECT_FALSE(SRA.isInRaceSet(
              InstrRef{MethodId{uint32_t(MI)}, BlockId(uint32_t(BI)),
                       uint32_t(II)}));
        }
    }
  EXPECT_TRUE(FoundGWrite);
  EXPECT_GT(SRA.stats().MayRacePairs, 0u);
}

TEST(StaticRaceTest, ProperLockingEmptiesTheRaceSet) {
  // Two workers increment a shared counter under sync(shared) where
  // `shared` is single-instance, and *nobody* touches the counter outside
  // the lock: MustCommonSync prunes every conflicting pair.  (buildCounter
  // is not usable here: its main reads the counter lock-free after join,
  // and the static phase conservatively ignores join ordering, paper
  // footnote 5.)
  Program P;
  IRBuilder B(P);
  ClassId Shared = B.makeClass("Shared");
  FieldId Count = B.makeField(Shared, "count");
  ClassId Worker = B.makeClass("Worker");
  FieldId Target = B.makeField(Worker, "target");
  B.startMethod(Worker, "run", 1);
  {
    RegId Obj = B.emitGetField(B.thisReg(), Target);
    RegId N = B.emitConst(4);
    B.forLoop(0, N, 1, [&](RegId) {
      B.sync(Obj, [&] {
        B.site("INC");
        RegId Cur = B.emitGetField(Obj, Count);
        B.emitPutField(Obj, Count,
                       B.emitBinOp(BinOpKind::Add, Cur, B.emitConst(1)));
      });
    });
    B.emitReturn();
  }
  B.startMain();
  RegId SharedObj = B.emitNew(Shared);
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  B.emitPutField(W1, Target, SharedObj);
  B.emitPutField(W2, Target, SharedObj);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitReturn();

  StaticRaceAnalysis SRA(P);
  SRA.run();
  InstrRef Inc = findBySite(P, Opcode::PutField, "INC");
  EXPECT_FALSE(SRA.isInRaceSet(Inc));
  EXPECT_GT(SRA.stats().CommonSyncFiltered, 0u);
}

TEST(StaticRaceTest, UnlockedCounterIsInTheRaceSet) {
  CounterProgram CP = buildCounter(false, 4);
  StaticRaceAnalysis SRA(CP.P);
  SRA.run();
  InstrRef Inc = findBySite(CP.P, Opcode::PutField, "INC");
  EXPECT_TRUE(SRA.isInRaceSet(Inc));
}

TEST(StaticRaceTest, ThreadLocalAccessesExcluded) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  ClassId Worker = B.makeClass("Worker");
  B.startMethod(Worker, "run", 1);
  {
    RegId Local = B.emitNew(Box); // never escapes
    B.site("LOCAL");
    B.emitPutField(Local, F, B.emitConst(1));
    B.emitReturn();
  }
  B.startMain();
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitReturn();

  StaticRaceAnalysis SRA(P);
  SRA.run();
  EXPECT_FALSE(SRA.isInRaceSet(findBySite(P, Opcode::PutField, "LOCAL")));
  EXPECT_GT(SRA.stats().ThreadLocalFiltered, 0u);
}

TEST(StaticRaceTest, MayRaceWithListsPartners) {
  CounterProgram CP = buildCounter(false, 4);
  StaticRaceAnalysis SRA(CP.P);
  SRA.run();
  InstrRef Inc = findBySite(CP.P, Opcode::PutField, "INC");
  EXPECT_FALSE(SRA.mayRaceWith(Inc).empty());
}

} // namespace
