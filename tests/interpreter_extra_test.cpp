//===- tests/interpreter_extra_test.cpp - More interpreter coverage -------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Edge cases the main interpreter suite does not reach: the remaining
/// arithmetic operators, reference comparisons, runtime type errors on
/// every operand position, monitor misuse, and scheduler corner cases.
///
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

InterpResult runProgram(const Program &P, uint64_t Seed = 1) {
  EXPECT_TRUE(verifyProgram(P).empty());
  InterpOptions Opts;
  Opts.Seed = Seed;
  Interpreter Interp(P, nullptr, Opts);
  return Interp.run();
}

TEST(InterpreterExtraTest, BitwiseAndComparisonOperators) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(12); // 0b1100
  RegId Bv = B.emitConst(10); // 0b1010
  B.emitPrint(B.emitBinOp(BinOpKind::And, A, Bv)); // 8
  B.emitPrint(B.emitBinOp(BinOpKind::Or, A, Bv));  // 14
  B.emitPrint(B.emitBinOp(BinOpKind::Xor, A, Bv)); // 6
  B.emitPrint(B.emitBinOp(BinOpKind::CmpLe, A, A)); // 1
  B.emitPrint(B.emitBinOp(BinOpKind::CmpGt, A, Bv)); // 1
  B.emitPrint(B.emitBinOp(BinOpKind::CmpGe, Bv, A)); // 0
  B.emitPrint(B.emitBinOp(BinOpKind::CmpNe, A, Bv)); // 1
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{8, 14, 6, 1, 1, 0, 1}));
}

TEST(InterpreterExtraTest, NegativeDivisionAndModulo) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(-7);
  RegId Bv = B.emitConst(2);
  B.emitPrint(B.emitBinOp(BinOpKind::Div, A, Bv)); // -3 (C++ trunc)
  B.emitPrint(B.emitBinOp(BinOpKind::Mod, A, Bv)); // -1
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{-3, -1}));
}

TEST(InterpreterExtraTest, ReferenceEqualityComparesIdentity) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  B.startMain();
  RegId O1 = B.emitNew(Box);
  RegId O2 = B.emitNew(Box);
  RegId O1Again = B.emitMove(O1);
  B.emitPrint(B.emitBinOp(BinOpKind::CmpEq, O1, O1Again)); // 1
  B.emitPrint(B.emitBinOp(BinOpKind::CmpEq, O1, O2));      // 0
  B.emitPrint(B.emitBinOp(BinOpKind::CmpNe, O1, O2));      // 1
  // Reference vs integer: never equal.
  RegId Zero = B.emitConst(0);
  B.emitPrint(B.emitBinOp(BinOpKind::CmpEq, O1, Zero));    // 0
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1, 0, 1, 0}));
}

TEST(InterpreterExtraTest, ArithmeticOnReferenceFaults) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId One = B.emitConst(1);
  B.emitPrint(B.emitBinOp(BinOpKind::Add, Obj, One));
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("integer"), std::string::npos);
}

TEST(InterpreterExtraTest, NegativeArraySizeFaults) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId Neg = B.emitConst(-3);
  B.emitPrint(B.emitNewArray(Neg));
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("negative"), std::string::npos);
}

TEST(InterpreterExtraTest, IndexingWithReferenceFaults) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId Arr = B.emitNewArray(B.emitConst(2));
  B.emitPrint(B.emitALoad(Arr, Arr)); // array used as index
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("index"), std::string::npos);
}

TEST(InterpreterExtraTest, MonitorExitWithoutOwnershipFaults) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  Instr Exit;
  Exit.Op = Opcode::MonitorExit;
  Exit.A = Obj;
  Exit.SyncRegion = 1;
  // Build by hand (the builder's sync() would not produce this bug), then
  // bypass verification because the whole point is runtime enforcement.
  P.method(P.MainMethod).Blocks[0].Instrs.push_back(Exit);
  B.emitReturn();
  InterpOptions Opts;
  Interpreter Interp(P, nullptr, Opts);
  InterpResult R = Interp.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("monitor"), std::string::npos);
}

TEST(InterpreterExtraTest, PrintOfReferenceRecordsObjectIndex) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  B.emitPrint(Obj);
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{0}));
}

TEST(InterpreterExtraTest, ManyThreadsAllComplete) {
  // Stress the round-robin scheduler with 12 threads.
  Program P;
  IRBuilder B(P);
  ClassId G = B.makeClass("G");
  FieldId Total = B.makeStaticField(G, "total");
  ClassId Worker = B.makeClass("Worker");
  FieldId Gate = B.makeField(Worker, "gate");
  B.startMethod(Worker, "run", 1);
  {
    RegId GateObj = B.emitGetField(B.thisReg(), Gate);
    B.sync(GateObj, [&] {
      RegId T = B.emitGetStatic(Total);
      B.emitPutStatic(Total, B.emitBinOp(BinOpKind::Add, T, B.emitConst(1)));
    });
    B.emitReturn();
  }
  B.startMain();
  RegId GateObj = B.emitNew(G);
  RegId N = B.emitConst(12);
  RegId Workers = B.emitNewArray(N);
  B.forLoop(0, N, 1, [&](RegId I) {
    RegId W = B.emitNew(Worker);
    B.emitPutField(W, Gate, GateObj);
    B.emitAStore(Workers, I, W);
    B.emitThreadStart(W);
  });
  B.forLoop(0, N, 1, [&](RegId I) {
    RegId W = B.emitALoad(Workers, I);
    B.emitThreadJoin(W);
  });
  B.emitPrint(B.emitGetStatic(Total));
  B.emitReturn();
  for (uint64_t Seed : {1u, 7u, 23u}) {
    InterpResult R = runProgram(P, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<int64_t>{12}));
    EXPECT_EQ(R.ThreadsCreated, 13u);
  }
}

TEST(InterpreterExtraTest, SmallQuantumIncreasesContextSwitches) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId N = B.emitConst(200);
  B.forLoop(0, N, 1, [&](RegId) {});
  B.emitReturn();

  InterpOptions Small;
  Small.MaxQuantum = 2;
  Interpreter A(P, nullptr, Small);
  InterpResult RA = A.run();

  InterpOptions Large;
  Large.MaxQuantum = 200;
  Interpreter Bi(P, nullptr, Large);
  InterpResult RB = Bi.run();

  ASSERT_TRUE(RA.Ok && RB.Ok);
  EXPECT_GT(RA.ContextSwitches, RB.ContextSwitches);
  EXPECT_EQ(RA.InstructionsExecuted, RB.InstructionsExecuted);
}

TEST(PrinterCoverageTest, EveryOpcodeRenders) {
  Program P;
  IRBuilder B(P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  FieldId S = B.makeStaticField(Box, "s");
  ClassId Worker = B.makeClass("Worker");
  MethodId Run = B.startMethod(Worker, "run", 1);
  B.emitReturn();
  (void)Run;
  B.startMain();
  RegId Obj = B.emitNew(Box);
  RegId W = B.emitNew(Worker);
  RegId V = B.emitConst(3);
  RegId Arr = B.emitNewArray(V);
  B.emitPrint(B.emitArrayLen(Arr));
  B.emitPutField(Obj, F, V);
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitPutStatic(S, V);
  B.emitPrint(B.emitGetStatic(S));
  RegId Zero = B.emitConst(0);
  B.emitAStore(Arr, Zero, V);
  B.emitPrint(B.emitALoad(Arr, Zero));
  B.sync(Obj, [&] { B.emitYield(); });
  B.emitThreadStart(W);
  B.emitThreadJoin(W);
  RegId Cond = B.emitBinOp(BinOpKind::CmpLt, Zero, V);
  B.ifThen(Cond, [&] {});
  B.emitReturn();

  // Insert a Trace by hand so the printer's trace arm is covered.
  Instr T;
  T.Op = Opcode::Trace;
  T.TraceWhat = TraceWhatKind::Field;
  T.A = Obj;
  T.Field = F;
  T.Access = AccessKind::Write;
  std::string TraceText = printInstr(P, T);
  EXPECT_NE(TraceText.find("trace"), std::string::npos);
  EXPECT_NE(TraceText.find(", W"), std::string::npos);

  std::string Text = printProgram(P);
  for (const char *Needle :
       {"new Box", "newarray", "arraylen", "Box.f", "Box.s",
        "monitorenter", "monitorexit", "start", "join", "branch", "jump",
        "return", "yield", "print", "cmplt"}) {
    EXPECT_NE(Text.find(Needle), std::string::npos) << Needle;
  }
}

} // namespace
