//===- tests/sharded_runtime_test.cpp - Sharded vs serial oracle ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle for the sharded detection runtime: for every
/// seed program, shard count and schedule seed, the sharded runtime must
/// report exactly the race-record set the serial runtime reports —
/// sharding is a throughput change, never a detection change
/// (docs/SHARDING.md).  Also unit-checks the ShardPool engine against a
/// serial Detector on a raw event stream.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "detect/Detector.h"
#include "detect/EventBatch.h"
#include "detect/ShardedRuntime.h"
#include "herd/Pipeline.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <string>
#include <thread>

using namespace herd;

namespace {

/// Canonical, order-independent encoding of a race record: every field
/// that reaches a user-visible report.
std::string encode(const RaceRecord &Rec) {
  std::ostringstream Out;
  Out << Rec.Location.raw() << '|' << Rec.CurrentThread.index() << '|'
      << int(Rec.CurrentAccess) << '|' << Rec.CurrentSite.index() << '|';
  for (LockId L : Rec.CurrentLocks)
    Out << L.index() << ',';
  Out << '|' << Rec.PriorThreadKnown << '|'
      << (Rec.PriorThreadKnown ? Rec.PriorThread.index() : 0) << '|'
      << int(Rec.PriorAccess) << '|';
  for (LockId L : Rec.PriorLocks)
    Out << L.index() << ',';
  return Out.str();
}

std::multiset<std::string> canonicalRecords(const RaceReporter &Reporter) {
  std::multiset<std::string> Out;
  for (const RaceRecord &Rec : Reporter.records())
    Out.insert(encode(Rec));
  return Out;
}

struct NamedProgram {
  std::string Name;
  Program P;
};

std::vector<NamedProgram> seedPrograms() {
  std::vector<NamedProgram> Out;
  Out.push_back({"counter_unlocked",
                 testprogs::buildCounter(/*Locked=*/false, 40).P});
  Out.push_back({"counter_locked",
                 testprogs::buildCounter(/*Locked=*/true, 40).P});
  Out.push_back({"figure2", testprogs::buildFigure2(/*SamePQ=*/false)});
  Out.push_back({"figure2_samepq", testprogs::buildFigure2(/*SamePQ=*/true)});
  Out.push_back({"fig3_loop", testprogs::buildFig3Loop(30)});
  for (uint64_t Seed : {2u, 5u, 11u, 17u}) {
    Out.push_back({"fuzz_" + std::to_string(Seed),
                   fuzzprogs::generateProgram(Seed)});
  }
  return Out;
}

constexpr uint32_t ShardCounts[] = {1, 2, 4, 8};
constexpr int NumScheduleSeeds = 16;

TEST(ShardedRuntimeTest, ReportsIdenticalToSerialAcrossShardCountsAndSeeds) {
  for (const NamedProgram &Prog : seedPrograms()) {
    for (int SeedIdx = 0; SeedIdx != NumScheduleSeeds; ++SeedIdx) {
      uint64_t Seed = 1 + uint64_t(SeedIdx);
      ToolConfig SerialCfg = ToolConfig::full();
      SerialCfg.Seed = Seed;
      PipelineResult Serial = runPipeline(Prog.P, SerialCfg);
      ASSERT_TRUE(Serial.Run.Ok)
          << Prog.Name << " seed " << Seed << ": " << Serial.Run.Error;
      std::multiset<std::string> Want = canonicalRecords(Serial.Reports);

      for (uint32_t Shards : ShardCounts) {
        ToolConfig Cfg = SerialCfg;
        Cfg.Shards = Shards;
        PipelineResult Result = runPipeline(Prog.P, Cfg);
        ASSERT_TRUE(Result.Run.Ok)
            << Prog.Name << " seed " << Seed << " shards " << Shards << ": "
            << Result.Run.Error;
        // The schedule must be byte-identical (detection never perturbs
        // the interpreter), so record sets are directly comparable.
        ASSERT_EQ(Serial.Run.InstructionsExecuted,
                  Result.Run.InstructionsExecuted)
            << Prog.Name << " seed " << Seed << " shards " << Shards;
        EXPECT_EQ(Want, canonicalRecords(Result.Reports))
            << Prog.Name << " seed " << Seed << " shards " << Shards;
      }
    }
  }
}

TEST(ShardedRuntimeTest, AblationConfigsAgreeWithSerialWhenSharded) {
  // The detection flags must mean the same thing under sharding.
  Program P = fuzzprogs::generateProgram(23);
  for (ToolConfig Base :
       {ToolConfig::noCache(), ToolConfig::noOwnership(),
        ToolConfig::fieldsMerged(), ToolConfig::noStatic()}) {
    Base.Seed = 9;
    PipelineResult Serial = runPipeline(P, Base);
    ASSERT_TRUE(Serial.Run.Ok) << Serial.Run.Error;
    ToolConfig Cfg = Base;
    Cfg.Shards = 4;
    PipelineResult Result = runPipeline(P, Cfg);
    ASSERT_TRUE(Result.Run.Ok) << Result.Run.Error;
    EXPECT_EQ(canonicalRecords(Serial.Reports),
              canonicalRecords(Result.Reports));
  }
}

TEST(ShardedRuntimeTest, ShardPoolMatchesSerialDetectorOnRawEvents) {
  // Engine-level differential: a random event stream through ShardPool
  // must yield the same per-location reports as one serial Detector.
  for (uint32_t Shards : ShardCounts) {
    Rng R(77);
    RaceReporter SerialReporter;
    Detector Serial(SerialReporter,
                    {/*UseOwnership=*/false, /*FieldsMerged=*/false});
    ShardPool Pool(Shards, /*BatchCapacity=*/8, /*QueueDepth=*/4);

    for (int Step = 0; Step != 4000; ++Step) {
      AccessEvent E;
      E.Location = LocationKey::forField(ObjectId(uint32_t(R.nextBelow(32))),
                                         FieldId(uint32_t(R.nextBelow(2))));
      E.Thread = ThreadId(uint32_t(R.nextBelow(3)));
      if (R.nextChance(1, 2))
        E.Locks.insert(LockId(uint32_t(R.nextBelow(3))));
      E.Access = R.nextChance(1, 3) ? AccessKind::Write : AccessKind::Read;
      Serial.handleAccess(E);
      // The pool ingests only pre-interned DetectorEvents (the live path's
      // contract); interning here plays the producer's role.
      Pool.submit(DetectorEvent{E.Location, E.Thread,
                                Pool.interner().intern(E.Locks), E.Access,
                                E.Site});
    }
    Pool.finish();

    RaceReporter PoolReporter;
    for (RaceRecord &Rec : Pool.mergedRecords())
      PoolReporter.report(std::move(Rec));
    EXPECT_EQ(canonicalRecords(SerialReporter),
              canonicalRecords(PoolReporter))
        << "shards " << Shards;
    EXPECT_EQ(Serial.stats().RacesReported,
              Pool.aggregateDetectorStats().RacesReported);
    EXPECT_EQ(Serial.stats().TrieNodes,
              Pool.aggregateDetectorStats().TrieNodes);
  }
}

TEST(ShardedRuntimeTest, ShardAssignmentIsStableAndExhaustive) {
  // Every location maps to exactly one shard, and the mapping does not
  // depend on anything but the key and the shard count.
  for (uint32_t Shards : ShardCounts) {
    for (uint32_t Obj = 0; Obj != 100; ++Obj) {
      LocationKey Key = LocationKey::forField(ObjectId(Obj), FieldId(1));
      uint32_t S = ShardPool::shardOf(Key, Shards);
      EXPECT_LT(S, Shards);
      EXPECT_EQ(S, ShardPool::shardOf(Key, Shards));
    }
  }
}

TEST(ShardedRuntimeTest, ShardAssignmentSpreadsStridedKeys) {
  // Regression for the unmixed `raw % NumShards` assignment: location keys
  // produced by real programs are strided (object ids in the high word,
  // field ids in the low), so any stride sharing a factor with the shard
  // count piled every key onto a few shards.  With the mixed hash no shard
  // may receive more than twice its fair share for any strided pattern.
  constexpr uint32_t NumKeys = 4096;
  for (uint32_t Shards : {3u, 4u, 8u}) {
    for (uint64_t Stride : {uint64_t(Shards), uint64_t(2 * Shards),
                            uint64_t(8), uint64_t(64), uint64_t(1) << 32}) {
      std::vector<uint32_t> Counts(Shards, 0);
      for (uint64_t I = 0; I != NumKeys; ++I) {
        uint32_t S =
            ShardPool::shardOf(LocationKey::fromRaw(I * Stride), Shards);
        ASSERT_LT(S, Shards);
        ++Counts[S];
      }
      uint32_t FairShare = NumKeys / Shards;
      for (uint32_t S = 0; S != Shards; ++S)
        EXPECT_LE(Counts[S], 2 * FairShare)
            << "shard " << S << " of " << Shards << ", stride " << Stride;
    }
  }
}

TEST(BoundedBatchQueueTest, StopUnblocksABlockedProducer) {
  // Regression for the producer deadlock: push() used to wait on NotFull
  // with a predicate that never checked Stopped, so a producer blocked on
  // backpressure slept forever once the consumer was gone.
  BoundedBatchQueue Queue(/*MaxBatches=*/1);
  EventBatch First;
  First.Events.resize(1);
  ASSERT_TRUE(Queue.push(std::move(First))); // fill the queue; no consumer

  std::atomic<bool> SecondPushReturned{false};
  std::atomic<bool> SecondPushResult{true};
  std::thread Producer([&] {
    EventBatch Second;
    Second.Events.resize(1);
    SecondPushResult = Queue.push(std::move(Second)); // blocks: queue full
    SecondPushReturned = true;
  });

  // Give the producer time to actually block on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(SecondPushReturned);

  Queue.stop();
  Producer.join(); // without the fix this join hangs (ctest TIMEOUT)
  EXPECT_TRUE(SecondPushReturned);
  EXPECT_FALSE(SecondPushResult) << "a stopped push must report rejection";
}

TEST(BoundedBatchQueueTest, PushAfterStopIsRejectedImmediately) {
  BoundedBatchQueue Queue(/*MaxBatches=*/4);
  Queue.stop();
  EventBatch Batch;
  Batch.Events.resize(1);
  EXPECT_FALSE(Queue.push(std::move(Batch)));
}

TEST(BoundedBatchQueueTest, StopDrainsRemainingBatchesToTheConsumer) {
  // stop() must not lose batches already queued: the consumer keeps
  // popping until empty, and only then sees the stop.
  BoundedBatchQueue Queue(/*MaxBatches=*/8);
  for (int I = 0; I != 3; ++I) {
    EventBatch Batch;
    Batch.Events.resize(size_t(I) + 1);
    ASSERT_TRUE(Queue.push(std::move(Batch)));
  }
  Queue.stop();
  EventBatch Out;
  int Popped = 0;
  while (Queue.pop(Out)) {
    ++Popped;
    Queue.completeOne();
  }
  EXPECT_EQ(Popped, 3);
}

TEST(ShardedRuntimeTest, ThroughputBenchPreconditionHolds) {
  // The bench harness claims sharded throughput by feeding ShardPool
  // directly; sanity-check here that a drained pool saw every event.
  ShardPool Pool(4, /*BatchCapacity=*/16, /*QueueDepth=*/8);
  for (int I = 0; I != 1000; ++I) {
    DetectorEvent E;
    E.Location = LocationKey::forField(ObjectId(uint32_t(I % 64)), FieldId(0));
    E.Thread = ThreadId(uint32_t(I % 2));
    E.Locks = LockSetInterner::emptySet();
    E.Access = AccessKind::Write;
    Pool.submit(E);
  }
  Pool.drain();
  uint64_t Total = 0;
  for (uint32_t S = 0; S != Pool.numShards(); ++S)
    Total += Pool.shardStats(S).EventsIngested;
  EXPECT_EQ(Total, 1000u);
  EXPECT_EQ(Pool.aggregateDetectorStats().EventsIn, 1000u);
  Pool.finish();
}

} // namespace
