//===- tests/sharded_runtime_test.cpp - Sharded vs serial oracle ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle for the sharded detection runtime: for every
/// seed program, shard count and schedule seed, the sharded runtime must
/// report exactly the race-record set the serial runtime reports —
/// sharding is a throughput change, never a detection change
/// (docs/SHARDING.md).  Also unit-checks the ShardPool engine against a
/// serial Detector on a raw event stream.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "detect/Detector.h"
#include "detect/ShardedRuntime.h"
#include "herd/Pipeline.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

using namespace herd;

namespace {

/// Canonical, order-independent encoding of a race record: every field
/// that reaches a user-visible report.
std::string encode(const RaceRecord &Rec) {
  std::ostringstream Out;
  Out << Rec.Location.raw() << '|' << Rec.CurrentThread.index() << '|'
      << int(Rec.CurrentAccess) << '|' << Rec.CurrentSite.index() << '|';
  for (LockId L : Rec.CurrentLocks)
    Out << L.index() << ',';
  Out << '|' << Rec.PriorThreadKnown << '|'
      << (Rec.PriorThreadKnown ? Rec.PriorThread.index() : 0) << '|'
      << int(Rec.PriorAccess) << '|';
  for (LockId L : Rec.PriorLocks)
    Out << L.index() << ',';
  return Out.str();
}

std::multiset<std::string> canonicalRecords(const RaceReporter &Reporter) {
  std::multiset<std::string> Out;
  for (const RaceRecord &Rec : Reporter.records())
    Out.insert(encode(Rec));
  return Out;
}

struct NamedProgram {
  std::string Name;
  Program P;
};

std::vector<NamedProgram> seedPrograms() {
  std::vector<NamedProgram> Out;
  Out.push_back({"counter_unlocked",
                 testprogs::buildCounter(/*Locked=*/false, 40).P});
  Out.push_back({"counter_locked",
                 testprogs::buildCounter(/*Locked=*/true, 40).P});
  Out.push_back({"figure2", testprogs::buildFigure2(/*SamePQ=*/false)});
  Out.push_back({"figure2_samepq", testprogs::buildFigure2(/*SamePQ=*/true)});
  Out.push_back({"fig3_loop", testprogs::buildFig3Loop(30)});
  for (uint64_t Seed : {2u, 5u, 11u, 17u}) {
    Out.push_back({"fuzz_" + std::to_string(Seed),
                   fuzzprogs::generateProgram(Seed)});
  }
  return Out;
}

constexpr uint32_t ShardCounts[] = {1, 2, 4, 8};
constexpr int NumScheduleSeeds = 16;

TEST(ShardedRuntimeTest, ReportsIdenticalToSerialAcrossShardCountsAndSeeds) {
  for (const NamedProgram &Prog : seedPrograms()) {
    for (int SeedIdx = 0; SeedIdx != NumScheduleSeeds; ++SeedIdx) {
      uint64_t Seed = 1 + uint64_t(SeedIdx);
      ToolConfig SerialCfg = ToolConfig::full();
      SerialCfg.Seed = Seed;
      PipelineResult Serial = runPipeline(Prog.P, SerialCfg);
      ASSERT_TRUE(Serial.Run.Ok)
          << Prog.Name << " seed " << Seed << ": " << Serial.Run.Error;
      std::multiset<std::string> Want = canonicalRecords(Serial.Reports);

      for (uint32_t Shards : ShardCounts) {
        ToolConfig Cfg = SerialCfg;
        Cfg.Shards = Shards;
        PipelineResult Result = runPipeline(Prog.P, Cfg);
        ASSERT_TRUE(Result.Run.Ok)
            << Prog.Name << " seed " << Seed << " shards " << Shards << ": "
            << Result.Run.Error;
        // The schedule must be byte-identical (detection never perturbs
        // the interpreter), so record sets are directly comparable.
        ASSERT_EQ(Serial.Run.InstructionsExecuted,
                  Result.Run.InstructionsExecuted)
            << Prog.Name << " seed " << Seed << " shards " << Shards;
        EXPECT_EQ(Want, canonicalRecords(Result.Reports))
            << Prog.Name << " seed " << Seed << " shards " << Shards;
      }
    }
  }
}

TEST(ShardedRuntimeTest, AblationConfigsAgreeWithSerialWhenSharded) {
  // The detection flags must mean the same thing under sharding.
  Program P = fuzzprogs::generateProgram(23);
  for (ToolConfig Base :
       {ToolConfig::noCache(), ToolConfig::noOwnership(),
        ToolConfig::fieldsMerged(), ToolConfig::noStatic()}) {
    Base.Seed = 9;
    PipelineResult Serial = runPipeline(P, Base);
    ASSERT_TRUE(Serial.Run.Ok) << Serial.Run.Error;
    ToolConfig Cfg = Base;
    Cfg.Shards = 4;
    PipelineResult Result = runPipeline(P, Cfg);
    ASSERT_TRUE(Result.Run.Ok) << Result.Run.Error;
    EXPECT_EQ(canonicalRecords(Serial.Reports),
              canonicalRecords(Result.Reports));
  }
}

TEST(ShardedRuntimeTest, ShardPoolMatchesSerialDetectorOnRawEvents) {
  // Engine-level differential: a random event stream through ShardPool
  // must yield the same per-location reports as one serial Detector.
  for (uint32_t Shards : ShardCounts) {
    Rng R(77);
    RaceReporter SerialReporter;
    Detector Serial(SerialReporter,
                    {/*UseOwnership=*/false, /*FieldsMerged=*/false});
    ShardPool Pool(Shards, /*BatchCapacity=*/8, /*QueueDepth=*/4);

    for (int Step = 0; Step != 4000; ++Step) {
      AccessEvent E;
      E.Location = LocationKey::forField(ObjectId(uint32_t(R.nextBelow(32))),
                                         FieldId(uint32_t(R.nextBelow(2))));
      E.Thread = ThreadId(uint32_t(R.nextBelow(3)));
      if (R.nextChance(1, 2))
        E.Locks.insert(LockId(uint32_t(R.nextBelow(3))));
      E.Access = R.nextChance(1, 3) ? AccessKind::Write : AccessKind::Read;
      Serial.handleAccess(E);
      Pool.submit(E);
    }
    Pool.finish();

    RaceReporter PoolReporter;
    for (RaceRecord &Rec : Pool.mergedRecords())
      PoolReporter.report(std::move(Rec));
    EXPECT_EQ(canonicalRecords(SerialReporter),
              canonicalRecords(PoolReporter))
        << "shards " << Shards;
    EXPECT_EQ(Serial.stats().RacesReported,
              Pool.aggregateDetectorStats().RacesReported);
    EXPECT_EQ(Serial.stats().TrieNodes,
              Pool.aggregateDetectorStats().TrieNodes);
  }
}

TEST(ShardedRuntimeTest, ShardAssignmentIsStableAndExhaustive) {
  // Every location maps to exactly one shard, and the mapping does not
  // depend on anything but the key and the shard count.
  for (uint32_t Shards : ShardCounts) {
    for (uint32_t Obj = 0; Obj != 100; ++Obj) {
      LocationKey Key = LocationKey::forField(ObjectId(Obj), FieldId(1));
      uint32_t S = ShardPool::shardOf(Key, Shards);
      EXPECT_LT(S, Shards);
      EXPECT_EQ(S, ShardPool::shardOf(Key, Shards));
    }
  }
}

TEST(ShardedRuntimeTest, ThroughputBenchPreconditionHolds) {
  // The bench harness claims sharded throughput by feeding ShardPool
  // directly; sanity-check here that a drained pool saw every event.
  ShardPool Pool(4, /*BatchCapacity=*/16, /*QueueDepth=*/8);
  for (int I = 0; I != 1000; ++I) {
    AccessEvent E;
    E.Location = LocationKey::forField(ObjectId(uint32_t(I % 64)), FieldId(0));
    E.Thread = ThreadId(uint32_t(I % 2));
    E.Access = AccessKind::Write;
    Pool.submit(E);
  }
  Pool.drain();
  uint64_t Total = 0;
  for (uint32_t S = 0; S != Pool.numShards(); ++S)
    Total += Pool.shardStats(S).EventsIngested;
  EXPECT_EQ(Total, 1000u);
  EXPECT_EQ(Pool.aggregateDetectorStats().EventsIn, 1000u);
  Pool.finish();
}

} // namespace
