//===- tests/weaker_than_test.cpp - Weaker-than relation properties -------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit and property tests for Section 3.1: the thread and access lattices,
/// the meet operators, the weaker-than partial order (Definition 2), and —
/// the heart of the algorithm — Theorem 1: if p ⊑ q then every future
/// event racing with q also races with p.
///
//===----------------------------------------------------------------------===//

#include "detect/AccessEvent.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

TEST(ThreadLatticeTest, MeetTable) {
  ThreadLattice T1{ThreadId(1)}, T2{ThreadId(2)};
  ThreadLattice Top = ThreadLattice::top();
  ThreadLattice Bot = ThreadLattice::bottom();
  EXPECT_EQ(meet(T1, T1), T1);
  EXPECT_EQ(meet(T1, Top), T1);
  EXPECT_EQ(meet(Top, T1), T1);
  EXPECT_EQ(meet(T1, T2), Bot);
  EXPECT_EQ(meet(T1, Bot), Bot);
  EXPECT_EQ(meet(Bot, Bot), Bot);
  EXPECT_EQ(meet(Top, Top), Top);
}

TEST(ThreadLatticeTest, PartialOrder) {
  ThreadLattice T1{ThreadId(1)}, T2{ThreadId(2)};
  ThreadLattice Bot = ThreadLattice::bottom();
  // t_i ⊑ t_j  iff  t_i = t_j or t_i = t_⊥.
  EXPECT_TRUE(isWeakerOrEqual(T1, T1));
  EXPECT_FALSE(isWeakerOrEqual(T1, T2));
  EXPECT_TRUE(isWeakerOrEqual(Bot, T1));
  EXPECT_TRUE(isWeakerOrEqual(Bot, Bot));
  EXPECT_FALSE(isWeakerOrEqual(T1, Bot));
}

TEST(AccessLatticeTest, MeetAndOrder) {
  EXPECT_EQ(meet(AccessKind::Read, AccessKind::Read), AccessKind::Read);
  EXPECT_EQ(meet(AccessKind::Read, AccessKind::Write), AccessKind::Write);
  EXPECT_EQ(meet(AccessKind::Write, AccessKind::Write), AccessKind::Write);
  EXPECT_TRUE(isWeakerOrEqual(AccessKind::Write, AccessKind::Read));
  EXPECT_FALSE(isWeakerOrEqual(AccessKind::Read, AccessKind::Write));
  EXPECT_TRUE(isWeakerOrEqual(AccessKind::Read, AccessKind::Read));
}

TEST(IsRaceTest, FourConditions) {
  LocationKey M = LocationKey::forField(ObjectId(1), FieldId(0));
  AccessEvent W1{M, ThreadId(1), {}, AccessKind::Write, SiteId()};
  AccessEvent W2{M, ThreadId(2), {}, AccessKind::Write, SiteId()};
  EXPECT_TRUE(isRace(W1, W2));

  // Same thread: no race.
  AccessEvent W1b = W1;
  EXPECT_FALSE(isRace(W1, W1b));

  // Different location: no race.
  AccessEvent Other = W2;
  Other.Location = LocationKey::forField(ObjectId(2), FieldId(0));
  EXPECT_FALSE(isRace(W1, Other));

  // Common lock: no race.
  AccessEvent L1 = W1, L2 = W2;
  L1.Locks = {LockId(9)};
  L2.Locks = {LockId(9), LockId(4)};
  EXPECT_FALSE(isRace(L1, L2));

  // Two reads: no race.
  AccessEvent R1 = W1, R2 = W2;
  R1.Access = R2.Access = AccessKind::Read;
  EXPECT_FALSE(isRace(R1, R2));
  R2.Access = AccessKind::Write;
  EXPECT_TRUE(isRace(R1, R2));
}

TEST(WeakerThanTest, DefinitionTwoExamples) {
  LocationKey M = LocationKey::forField(ObjectId(1), FieldId(0));
  AccessEvent P{M, ThreadId(1), {}, AccessKind::Write, SiteId()};
  AccessEvent Q{M, ThreadId(1), {LockId(3)}, AccessKind::Read, SiteId()};
  // Fewer locks + write ⊑ more locks + read, same thread.
  EXPECT_TRUE(isWeakerOrEqual(P, Q));
  EXPECT_FALSE(isWeakerOrEqual(Q, P));

  // Different threads are incomparable.
  AccessEvent QOther = Q;
  QOther.Thread = ThreadId(2);
  EXPECT_FALSE(isWeakerOrEqual(P, QOther));

  // Different locations are incomparable.
  AccessEvent QFar = Q;
  QFar.Location = LocationKey::forField(ObjectId(2), FieldId(0));
  EXPECT_FALSE(isWeakerOrEqual(P, QFar));
}

//===----------------------------------------------------------------------===
// Property tests.
//===----------------------------------------------------------------------===

/// Generates a pseudo-random event over a small universe so that collisions
/// (same location, shared locks) are common.
AccessEvent randomEvent(Rng &R) {
  AccessEvent E;
  E.Location = LocationKey::forField(ObjectId(uint32_t(R.nextBelow(3))),
                                     FieldId(uint32_t(R.nextBelow(2))));
  E.Thread = ThreadId(uint32_t(R.nextBelow(3)));
  for (uint32_t L = 0; L != 4; ++L)
    if (R.nextChance(1, 2))
      E.Locks.insert(LockId(L));
  E.Access = R.nextChance(1, 2) ? AccessKind::Write : AccessKind::Read;
  return E;
}

class WeakerThanPropertyTest : public ::testing::TestWithParam<uint64_t> {};

/// Theorem 1: p ⊑ q implies (IsRace(q, r) implies IsRace(p, r)) for every
/// future access r.
TEST_P(WeakerThanPropertyTest, TheoremOneHolds) {
  Rng R(GetParam());
  int Checked = 0;
  for (int Trial = 0; Trial != 4000; ++Trial) {
    AccessEvent P = randomEvent(R);
    // Half the time derive Q by strengthening P (extra locks, possibly a
    // weaker kind), so comparable pairs are common; otherwise draw Q
    // independently to also exercise incomparable pairs.
    AccessEvent Q = R.nextChance(1, 2) ? P : randomEvent(R);
    if (R.nextChance(1, 2)) {
      Q.Locks.insert(LockId(uint32_t(4 + R.nextBelow(3))));
      if (P.Access == AccessKind::Write && R.nextChance(1, 2))
        Q.Access = AccessKind::Read;
    }
    AccessEvent Future = randomEvent(R);
    if (!isWeakerOrEqual(P, Q))
      continue;
    ++Checked;
    if (isRace(Q, Future)) {
      EXPECT_TRUE(isRace(P, Future))
          << "weaker event failed to race where the stronger did";
    }
  }
  EXPECT_GT(Checked, 500) << "generator produced too few comparable pairs";
}

/// ⊑ is a partial order: reflexive, antisymmetric (up to field equality),
/// transitive.
TEST_P(WeakerThanPropertyTest, IsPartialOrder) {
  Rng R(GetParam() + 1000);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    AccessEvent A = randomEvent(R);
    AccessEvent B = randomEvent(R);
    AccessEvent C = randomEvent(R);
    EXPECT_TRUE(isWeakerOrEqual(A, A));
    if (isWeakerOrEqual(A, B) && isWeakerOrEqual(B, C)) {
      EXPECT_TRUE(isWeakerOrEqual(A, C));
    }
    if (isWeakerOrEqual(A, B) && isWeakerOrEqual(B, A)) {
      EXPECT_EQ(A.Location, B.Location);
      EXPECT_EQ(A.Locks, B.Locks);
      EXPECT_EQ(A.Thread, B.Thread);
      EXPECT_EQ(A.Access, B.Access);
    }
  }
}

/// The meet operators are idempotent, commutative and associative, and the
/// meet is a lower bound in the order.
TEST_P(WeakerThanPropertyTest, MeetIsALowerBound) {
  Rng R(GetParam() + 2000);
  auto RandomLattice = [&] {
    switch (R.nextBelow(4)) {
    case 0:
      return ThreadLattice::top();
    case 1:
      return ThreadLattice::bottom();
    default:
      return ThreadLattice(ThreadId(uint32_t(R.nextBelow(3))));
    }
  };
  for (int Trial = 0; Trial != 2000; ++Trial) {
    ThreadLattice A = RandomLattice(), B = RandomLattice(),
                  C = RandomLattice();
    EXPECT_EQ(meet(A, A), A);
    EXPECT_EQ(meet(A, B), meet(B, A));
    EXPECT_EQ(meet(meet(A, B), C), meet(A, meet(B, C)));
    ThreadLattice M = meet(A, B);
    if (!A.isTop()) {
      EXPECT_TRUE(isWeakerOrEqual(M, A));
    }
    if (!B.isTop()) {
      EXPECT_TRUE(isWeakerOrEqual(M, B));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakerThanPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
