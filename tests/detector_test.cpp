//===- tests/detector_test.cpp - Detector + ownership tests ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the per-location detector with the ownership model (Sections 3
/// and 7) and the FieldsMerged accuracy variant, driven by synthetic event
/// streams.
///
//===----------------------------------------------------------------------===//

#include "detect/Detector.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

constexpr AccessKind R = AccessKind::Read;
constexpr AccessKind W = AccessKind::Write;

AccessEvent event(uint32_t Thread, uint32_t Obj, uint32_t Field,
                  std::initializer_list<uint32_t> Locks, AccessKind Kind) {
  AccessEvent E;
  E.Location = LocationKey::forField(ObjectId(Obj), FieldId(Field));
  E.Thread = ThreadId(Thread);
  for (uint32_t L : Locks)
    E.Locks.insert(LockId(L));
  E.Access = Kind;
  return E;
}

TEST(DetectorTest, OwnershipFiltersSingleThreadAccesses) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  for (int I = 0; I != 10; ++I)
    Det.handleAccess(event(1, 1, 0, {}, W));
  DetectorStats S = Det.stats();
  EXPECT_EQ(S.OwnedFiltered, 10u);
  EXPECT_EQ(S.LocationsShared, 0u);
  EXPECT_TRUE(Reporter.empty());
}

TEST(DetectorTest, InitThenHandoffPatternNotReported) {
  // The common idiom of Section 2.3: a parent initializes data without
  // locks, a child then works on it exclusively.  Ownership cannot order
  // the two (no join), but because the *detector only starts recording at
  // the sharing access*, the parent's unlocked initialization is invisible
  // and the single child never races with itself.
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  Det.handleAccess(event(0, 1, 0, {}, W)); // parent init
  Det.handleAccess(event(1, 1, 0, {}, W)); // child takes over (shares)
  Det.handleAccess(event(1, 1, 0, {}, R));
  EXPECT_TRUE(Reporter.empty());
  EXPECT_EQ(Det.stats().LocationsShared, 1u);
}

TEST(DetectorTest, NoOwnershipReportsHandoffAsRace) {
  RaceReporter Reporter;
  Detector Det(Reporter, {/*UseOwnership=*/false, /*FieldsMerged=*/false});
  Det.handleAccess(event(0, 1, 0, {}, W));
  Det.handleAccess(event(1, 1, 0, {}, W));
  EXPECT_EQ(Reporter.size(), 1u); // the spurious report Table 3 counts
}

TEST(DetectorTest, RealRaceReportedWithOwnership) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  Det.handleAccess(event(1, 1, 0, {}, W)); // owner
  Det.handleAccess(event(2, 1, 0, {}, W)); // shares; no prior history
  Det.handleAccess(event(1, 1, 0, {}, W)); // now conflicts with thread 2
  ASSERT_EQ(Reporter.size(), 1u);
  const RaceRecord &Rec = Reporter.records()[0];
  EXPECT_EQ(Rec.CurrentThread, ThreadId(1));
  EXPECT_TRUE(Rec.PriorThreadKnown);
  EXPECT_EQ(Rec.PriorThread, ThreadId(2));
}

TEST(DetectorTest, OwnershipSharingAccessStartsTheHistory) {
  // The access that flips a location to shared is itself recorded: a later
  // disjoint-lockset access by another thread must race with it.
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  Det.handleAccess(event(1, 1, 0, {}, R));  // owner reads
  Det.handleAccess(event(2, 1, 0, {5}, W)); // shares, holds lock 5
  Det.handleAccess(event(3, 1, 0, {6}, W)); // disjoint from {5}: race
  EXPECT_EQ(Reporter.size(), 1u);
}

TEST(DetectorTest, ProperlyLockedSharingNeverReports) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  for (uint32_t Round = 0; Round != 50; ++Round) {
    Det.handleAccess(event(1 + Round % 3, 1, 0, {9}, W));
    Det.handleAccess(event(1 + (Round + 1) % 3, 1, 0, {9}, R));
  }
  EXPECT_TRUE(Reporter.empty());
}

TEST(DetectorTest, DistinctFieldsAreDistinctLocations) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  // Field 0 protected by lock 3; field 1 protected by lock 4 — consistent
  // per-field locking, no races even though no single lock covers both.
  for (int I = 0; I != 10; ++I) {
    Det.handleAccess(event(1, 1, 0, {3}, W));
    Det.handleAccess(event(2, 1, 0, {3}, W));
    Det.handleAccess(event(1, 1, 1, {4}, W));
    Det.handleAccess(event(2, 1, 1, {4}, W));
  }
  EXPECT_TRUE(Reporter.empty());
}

TEST(DetectorTest, FieldsMergedConflatesPerFieldLocking) {
  // The same stream as above reported as racy when fields are merged —
  // exactly the spurious LinkedQueue-style reports of Section 8.3.
  RaceReporter Reporter;
  Detector Det(Reporter, {/*UseOwnership=*/true, /*FieldsMerged=*/true});
  for (int I = 0; I != 10; ++I) {
    Det.handleAccess(event(1, 1, 0, {3}, W));
    Det.handleAccess(event(2, 1, 0, {3}, W));
    Det.handleAccess(event(1, 1, 1, {4}, W));
    Det.handleAccess(event(2, 1, 1, {4}, W));
  }
  EXPECT_FALSE(Reporter.empty());
  EXPECT_EQ(Reporter.countDistinctObjects(), 1u);
}

TEST(DetectorTest, ReportsAtLeastOncePerRacyLocation) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  // Two independent racy locations.
  Det.handleAccess(event(1, 1, 0, {}, W));
  Det.handleAccess(event(2, 1, 0, {}, W)); // shares loc A
  Det.handleAccess(event(1, 2, 0, {}, W));
  Det.handleAccess(event(2, 2, 0, {}, W)); // shares loc B
  Det.handleAccess(event(1, 1, 0, {}, W)); // races on A
  Det.handleAccess(event(1, 2, 0, {}, W)); // races on B
  EXPECT_EQ(Reporter.countDistinctLocations(), 2u);
  EXPECT_EQ(Reporter.countDistinctObjects(), 2u);
}

TEST(DetectorTest, OnSharedCallbackFires) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  std::vector<LocationKey> SharedKeys;
  Det.setOnShared([&](LocationKey K) { SharedKeys.push_back(K); });
  Det.handleAccess(event(1, 7, 0, {}, W));
  EXPECT_TRUE(SharedKeys.empty());
  Det.handleAccess(event(2, 7, 0, {}, W));
  ASSERT_EQ(SharedKeys.size(), 1u);
  EXPECT_EQ(SharedKeys[0], LocationKey::forField(ObjectId(7), FieldId(0)));
}

TEST(DetectorTest, StatsCountTrieNodes) {
  RaceReporter Reporter;
  Detector Det(Reporter, {});
  Det.handleAccess(event(1, 1, 0, {2, 3}, W));
  Det.handleAccess(event(2, 1, 0, {2, 3}, W)); // shared; path of 2 locks
  DetectorStats S = Det.stats();
  EXPECT_EQ(S.LocationsTracked, 1u);
  EXPECT_EQ(S.LocationsShared, 1u);
  EXPECT_EQ(S.TrieNodes, 3u); // root + 2 path nodes
}

} // namespace
