//===- tests/interpreter_test.cpp - Interpreter semantics tests -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//

#include "instr/Superinstr.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "runtime/InterpProfiler.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

InterpResult runProgram(const Program &P, uint64_t Seed = 1,
                        RuntimeHooks *Hooks = nullptr) {
  EXPECT_TRUE(verifyProgram(P).empty());
  InterpOptions Opts;
  Opts.Seed = Seed;
  Interpreter Interp(P, Hooks, Opts);
  return Interp.run();
}

TEST(InterpreterTest, ArithmeticAndPrint) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId A = B.emitConst(7);
  RegId C = B.emitConst(3);
  B.emitPrint(B.emitBinOp(BinOpKind::Add, A, C));
  B.emitPrint(B.emitBinOp(BinOpKind::Sub, A, C));
  B.emitPrint(B.emitBinOp(BinOpKind::Mul, A, C));
  B.emitPrint(B.emitBinOp(BinOpKind::Div, A, C));
  B.emitPrint(B.emitBinOp(BinOpKind::Mod, A, C));
  B.emitPrint(B.emitBinOp(BinOpKind::CmpLt, C, A));
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{10, 4, 21, 2, 1, 1}));
}

TEST(InterpreterTest, FieldsAndArrays) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Box");
  FieldId F = B.makeField(C, "v");
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId V = B.emitConst(42);
  B.emitPutField(Obj, F, V);
  B.emitPrint(B.emitGetField(Obj, F));
  RegId Len = B.emitConst(4);
  RegId Arr = B.emitNewArray(Len);
  RegId Idx = B.emitConst(2);
  B.emitAStore(Arr, Idx, V);
  B.emitPrint(B.emitALoad(Arr, Idx));
  B.emitPrint(B.emitArrayLen(Arr));
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{42, 42, 4}));
}

TEST(InterpreterTest, StaticFields) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("G");
  FieldId S = B.makeStaticField(C, "counter");
  B.startMain();
  RegId V = B.emitConst(5);
  B.emitPutStatic(S, V);
  RegId Got = B.emitGetStatic(S);
  B.emitPrint(Got);
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{5}));
}

TEST(InterpreterTest, CallsPassArgumentsAndReturnValues) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Math");
  MethodId Add = B.startMethod(C, "add3", /*NumParams=*/3);
  {
    RegId Sum = B.emitBinOp(BinOpKind::Add, B.param(1), B.param(2));
    B.emitReturn(Sum);
  }
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId X = B.emitConst(4);
  RegId Y = B.emitConst(9);
  RegId Ret = B.emitCall(Add, {Obj, X, Y});
  B.emitPrint(Ret);
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{13}));
}

TEST(InterpreterTest, RecursionComputesFactorial) {
  // fact(this, n) = n <= 1 ? 1 : n * fact(this, n-1).
  Program P2;
  IRBuilder B2(P2);
  ClassId C2 = B2.makeClass("Fact");
  MethodId Fact2 = B2.startMethod(C2, "fact", 2);
  {
    RegId N = B2.param(1);
    RegId One = B2.emitConst(1);
    RegId IsBase = B2.emitBinOp(BinOpKind::CmpLe, N, One);
    B2.ifThenElse(
        IsBase, [&] { B2.emitReturn(B2.emitConst(1)); },
        [&] {
          RegId NMinus1 = B2.emitBinOp(BinOpKind::Sub, N, B2.emitConst(1));
          RegId Rec = B2.emitCall(Fact2, {B2.thisReg(), NMinus1});
          B2.emitReturn(B2.emitBinOp(BinOpKind::Mul, N, Rec));
        });
    B2.emitReturn(B2.emitConst(0)); // unreachable join
  }
  B2.startMain();
  RegId Obj = B2.emitNew(C2);
  RegId Five = B2.emitConst(5);
  B2.emitPrint(B2.emitCall(Fact2, {Obj, Five}));
  B2.emitReturn();
  InterpResult R = runProgram(P2);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{120}));
}

TEST(InterpreterTest, LoopsSumCorrectly) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Box");
  FieldId F = B.makeField(C, "acc");
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId N = B.emitConst(100);
  B.forLoop(1, N, 1, [&](RegId I) {
    RegId Cur = B.emitGetField(Obj, F);
    B.emitPutField(Obj, F, B.emitBinOp(BinOpKind::Add, Cur, I));
  });
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{4950})); // sum 1..99
}

/// Builds a program where two threads increment a shared counter field
/// under a lock NumIters times each, then main joins and prints the total.
Program buildTwoThreadCounter(bool Locked, int64_t NumIters) {
  Program P;
  IRBuilder B(P);
  ClassId Shared = B.makeClass("Shared");
  FieldId Count = B.makeField(Shared, "count");
  ClassId Worker = B.makeClass("Worker");
  FieldId Target = B.makeField(Worker, "target");

  MethodId Run = B.startMethod(Worker, "run", 1);
  {
    RegId Obj = B.emitGetField(B.thisReg(), Target);
    RegId N = B.emitConst(NumIters);
    B.forLoop(0, N, 1, [&](RegId) {
      auto Increment = [&] {
        RegId Cur = B.emitGetField(Obj, Count);
        RegId One = B.emitConst(1);
        B.emitPutField(Obj, Count, B.emitBinOp(BinOpKind::Add, Cur, One));
      };
      if (Locked)
        B.sync(Obj, Increment);
      else
        Increment();
    });
    B.emitReturn();
  }

  B.startMain();
  RegId SharedObj = B.emitNew(Shared);
  RegId W1 = B.emitNew(Worker);
  RegId W2 = B.emitNew(Worker);
  B.emitPutField(W1, Target, SharedObj);
  B.emitPutField(W2, Target, SharedObj);
  B.emitThreadStart(W1);
  B.emitThreadStart(W2);
  B.emitThreadJoin(W1);
  B.emitThreadJoin(W2);
  B.emitPrint(B.emitGetField(SharedObj, Count));
  B.emitReturn();
  (void)Run;
  return P;
}

TEST(InterpreterTest, ThreadsRunAndJoin) {
  Program P = buildTwoThreadCounter(/*Locked=*/true, 50);
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.ThreadsCreated, 3u);
  EXPECT_EQ(R.Output, (std::vector<int64_t>{100}));
}

TEST(InterpreterTest, MonitorsActuallyExcludeInterleavings) {
  // With locking, the counter is exact for every seed.
  for (uint64_t Seed : {1u, 2u, 3u, 17u, 99u}) {
    Program P = buildTwoThreadCounter(/*Locked=*/true, 25);
    InterpResult R = runProgram(P, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    EXPECT_EQ(R.Output, (std::vector<int64_t>{50}));
  }
}

TEST(InterpreterTest, UnlockedIncrementsCanLoseUpdates) {
  // The read-modify-write race should drop updates for at least one seed —
  // this is the observable symptom the detector exists to explain.
  bool SawLostUpdate = false;
  for (uint64_t Seed = 1; Seed != 30 && !SawLostUpdate; ++Seed) {
    Program P = buildTwoThreadCounter(/*Locked=*/false, 40);
    InterpResult R = runProgram(P, Seed);
    ASSERT_TRUE(R.Ok) << R.Error;
    SawLostUpdate = R.Output[0] < 80;
  }
  EXPECT_TRUE(SawLostUpdate);
}

TEST(InterpreterTest, DeterministicForSameSeed) {
  Program P = buildTwoThreadCounter(/*Locked=*/false, 30);
  InterpResult R1 = runProgram(P, 1234);
  InterpResult R2 = runProgram(P, 1234);
  ASSERT_TRUE(R1.Ok && R2.Ok);
  EXPECT_EQ(R1.Output, R2.Output);
  EXPECT_EQ(R1.InstructionsExecuted, R2.InstructionsExecuted);
  EXPECT_EQ(R1.ContextSwitches, R2.ContextSwitches);
}

TEST(InterpreterTest, SynchronizedMethodAcquiresThisMonitor) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Obj");
  FieldId F = B.makeField(C, "v");
  MethodId Bump =
      B.startMethod(C, "bump", 1, /*IsStatic=*/false, /*IsSynchronized=*/true);
  {
    RegId Cur = B.emitGetField(B.thisReg(), F);
    B.emitPutField(B.thisReg(), F, B.emitBinOp(BinOpKind::Add, Cur,
                                               B.emitConst(1)));
    B.emitReturn();
  }
  B.startMain();
  RegId Obj = B.emitNew(C);
  B.emitCallVoid(Bump, {Obj});
  B.emitCallVoid(Bump, {Obj});
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();

  struct MonitorCounter : RuntimeHooks {
    int Enters = 0, Exits = 0;
    void onMonitorEnter(ThreadId, LockId, bool,
                        SiteId = SiteId::invalid()) override {
      ++Enters;
    }
    void onMonitorExit(ThreadId, LockId, bool) override { ++Exits; }
  } Hooks;
  InterpResult R = runProgram(P, 1, &Hooks);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{2}));
  EXPECT_EQ(Hooks.Enters, 2);
  EXPECT_EQ(Hooks.Exits, 2);
}

TEST(InterpreterTest, ReentrantMonitorReportsRecursion) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("L");
  B.startMain();
  RegId Obj = B.emitNew(C);
  B.sync(Obj, [&] { B.sync(Obj, [&] { B.emitPrint(B.emitConst(1)); }); });
  B.emitReturn();

  struct RecHooks : RuntimeHooks {
    std::vector<bool> EnterRecursive, ExitStillHeld;
    void onMonitorEnter(ThreadId, LockId, bool Recursive,
                        SiteId = SiteId::invalid()) override {
      EnterRecursive.push_back(Recursive);
    }
    void onMonitorExit(ThreadId, LockId, bool StillHeld) override {
      ExitStillHeld.push_back(StillHeld);
    }
  } Hooks;
  InterpResult R = runProgram(P, 1, &Hooks);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(Hooks.EnterRecursive, (std::vector<bool>{false, true}));
  EXPECT_EQ(Hooks.ExitStillHeld, (std::vector<bool>{true, false}));
}

TEST(InterpreterTest, NullDereferenceFaults) {
  Program P;
  IRBuilder B(P);
  ClassId C = B.makeClass("Box");
  FieldId F = B.makeField(C, "v");
  B.startMain();
  RegId Obj = B.emitNew(C);
  RegId Null = B.emitGetField(Obj, F); // field holds default 0 (int!)
  // Using the int as a reference is a type error.
  B.emitPrint(B.emitGetField(Null, F));
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("reference"), std::string::npos);
}

TEST(InterpreterTest, OutOfBoundsFaults) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  RegId Arr = B.emitNewArray(B.emitConst(2));
  B.emitPrint(B.emitALoad(Arr, B.emitConst(5)));
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("bounds"), std::string::npos);
}

TEST(InterpreterTest, DivisionByZeroFaults) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  B.emitPrint(B.emitBinOp(BinOpKind::Div, B.emitConst(1), B.emitConst(0)));
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("zero"), std::string::npos);
}

TEST(InterpreterTest, DeadlockDetected) {
  // Main starts a worker holding lock A wanting B while it holds B wanting
  // A — with a yield in the middle to force the interleaving.
  Program P;
  IRBuilder B(P);
  ClassId LockCls = B.makeClass("L");
  ClassId Worker = B.makeClass("W");
  FieldId FA = B.makeField(Worker, "a");
  FieldId FB = B.makeField(Worker, "b");
  B.startMethod(Worker, "run", 1);
  {
    RegId A = B.emitGetField(B.thisReg(), FA);
    RegId Bo = B.emitGetField(B.thisReg(), FB);
    uint32_t R1 = B.emitMonitorEnter(A);
    B.emitYield();
    B.emitYield();
    uint32_t R2 = B.emitMonitorEnter(Bo);
    B.emitMonitorExit(Bo, R2);
    B.emitMonitorExit(A, R1);
    B.emitReturn();
  }
  B.startMain();
  RegId A = B.emitNew(LockCls);
  RegId Bo = B.emitNew(LockCls);
  RegId W = B.emitNew(Worker);
  B.emitPutField(W, FA, A);
  B.emitPutField(W, FB, Bo);
  uint32_t R1 = B.emitMonitorEnter(Bo);
  B.emitThreadStart(W);
  B.emitYield();
  B.emitYield();
  uint32_t R2 = B.emitMonitorEnter(A);
  B.emitMonitorExit(A, R2);
  B.emitMonitorExit(Bo, R1);
  B.emitThreadJoin(W);
  B.emitReturn();

  bool SawDeadlock = false;
  for (uint64_t Seed = 1; Seed != 40 && !SawDeadlock; ++Seed) {
    InterpOptions Opts;
    Opts.Seed = Seed;
    Opts.MaxQuantum = 2;
    Interpreter Interp(P, nullptr, Opts);
    InterpResult R = Interp.run();
    if (!R.Ok && R.Error.find("deadlock") != std::string::npos)
      SawDeadlock = true;
  }
  EXPECT_TRUE(SawDeadlock);
}

TEST(InterpreterTest, FuelLimitStopsRunawayPrograms) {
  Program P;
  IRBuilder B(P);
  B.startMain();
  BlockId Loop = B.newBlock();
  B.emitJump(Loop);
  B.setBlock(Loop);
  B.emitJump(Loop);
  InterpOptions Opts;
  Opts.MaxInstructions = 10'000;
  Interpreter Interp(P, nullptr, Opts);
  InterpResult R = Interp.run();
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("budget"), std::string::npos);
}

TEST(InterpreterTest, TraceEveryAccessEmitsEvents) {
  Program P = buildTwoThreadCounter(/*Locked=*/true, 10);
  struct Counter : RuntimeHooks {
    uint64_t Accesses = 0;
    void onAccess(ThreadId, LocationKey, AccessKind, SiteId) override {
      ++Accesses;
    }
  } Hooks;
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Hooks, Opts);
  InterpResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(Hooks.Accesses, 40u); // 2 threads x 10 iters x (read+write) + setup
  EXPECT_EQ(Hooks.Accesses, R.AccessEvents);
}

TEST(InterpreterTest, ProfilerCountsExactAcrossDispatchModes) {
  // The profiler contract (docs/INTERPRETER.md): per-opcode dispatch
  // counts are exact per *constituent* instruction in every dispatch
  // mode.  The profiled threaded variant runs the original unfused code,
  // so its counts must equal the switch interpreter's to the last
  // dispatch — superinstructions never blur the profile.
  Program P = buildTwoThreadCounter(/*Locked=*/true, 20);
  ThreadedCode TC = buildThreadedCode(P);
  ASSERT_GT(TC.Stats.sites(), 0u); // the fused path genuinely exists

  auto ProfiledRun = [&](DispatchMode Mode, InterpProfiler &Prof) {
    InterpOptions Opts;
    Opts.Seed = 5;
    Opts.Dispatch = Mode;
    Opts.Fused = &TC;
    Opts.Profiler = &Prof;
    Interpreter Interp(P, nullptr, Opts);
    InterpResult R = Interp.run();
    EXPECT_TRUE(R.Ok) << R.Error;
    return R;
  };

  InterpProfiler SwitchProf, ThreadedProf;
  InterpResult SwitchRun = ProfiledRun(DispatchMode::Switch, SwitchProf);
  InterpResult ThreadedRun =
      ProfiledRun(DispatchMode::Threaded, ThreadedProf);

  EXPECT_EQ(SwitchRun.InstructionsExecuted, ThreadedRun.InstructionsExecuted);
  EXPECT_EQ(SwitchProf.totalDispatches(), SwitchRun.InstructionsExecuted);
  EXPECT_EQ(ThreadedProf.totalDispatches(),
            ThreadedRun.InstructionsExecuted);
  for (uint8_t Op = 0; Op <= uint8_t(Opcode::Trace); ++Op)
    EXPECT_EQ(SwitchProf.counts(Opcode(Op)).Dispatches,
              ThreadedProf.counts(Opcode(Op)).Dispatches)
        << opcodeName(Opcode(Op));
  // Profiled threaded runs unfused: the fused counters must stay zero.
  EXPECT_EQ(ThreadedRun.Fused.total(), 0u);

  // The unprofiled threaded run does fuse — and still executes the same
  // number of constituent instructions.
  InterpOptions Opts;
  Opts.Seed = 5;
  Opts.Dispatch = DispatchMode::Threaded;
  Opts.Fused = &TC;
  Interpreter Fast(P, nullptr, Opts);
  InterpResult FastRun = Fast.run();
  ASSERT_TRUE(FastRun.Ok) << FastRun.Error;
  EXPECT_GT(FastRun.Fused.total(), 0u);
  EXPECT_EQ(FastRun.InstructionsExecuted, SwitchRun.InstructionsExecuted);
}

TEST(InterpreterTest, JoinOnUnstartedThreadReturnsImmediately) {
  Program P;
  IRBuilder B(P);
  ClassId Worker = B.makeClass("W");
  B.startMethod(Worker, "run", 1);
  B.emitReturn();
  B.startMain();
  RegId W = B.emitNew(Worker);
  B.emitThreadJoin(W); // never started: no-op per Java semantics
  B.emitPrint(B.emitConst(7));
  B.emitReturn();
  InterpResult R = runProgram(P);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{7}));
}

TEST(InterpreterTest, DoubleStartFaults) {
  Program P;
  IRBuilder B(P);
  ClassId Worker = B.makeClass("W");
  B.startMethod(Worker, "run", 1);
  B.emitReturn();
  B.startMain();
  RegId W = B.emitNew(Worker);
  B.emitThreadStart(W);
  B.emitThreadStart(W);
  B.emitReturn();
  InterpResult R = runProgram(P);
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Error.find("twice"), std::string::npos);
}

TEST(HeapTest, ClassStaticsObjectIsSharedPerClass) {
  Program P;
  IRBuilder B(P);
  ClassId C1 = B.makeClass("A");
  FieldId S1 = B.makeStaticField(C1, "x");
  FieldId S2 = B.makeStaticField(C1, "y");
  ClassId C2 = B.makeClass("B");
  FieldId S3 = B.makeStaticField(C2, "x");
  B.startMain();
  B.emitPutStatic(S1, B.emitConst(1));
  B.emitPutStatic(S2, B.emitConst(2));
  B.emitPutStatic(S3, B.emitConst(3));
  B.emitPrint(B.emitGetStatic(S1));
  B.emitPrint(B.emitGetStatic(S2));
  B.emitPrint(B.emitGetStatic(S3));
  B.emitReturn();
  Interpreter Interp(P, nullptr, InterpOptions{});
  InterpResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Output, (std::vector<int64_t>{1, 2, 3}));
  // Exactly two statics pseudo-objects were materialized, and the two
  // fields of class A share one (distinct slots).
  EXPECT_EQ(Interp.heap().classStatics(C1), Interp.heap().classStatics(C1));
  EXPECT_NE(Interp.heap().classStatics(C1).index(),
            Interp.heap().classStatics(C2).index());
}

} // namespace
