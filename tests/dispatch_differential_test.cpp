//===- tests/dispatch_differential_test.cpp - Switch vs threaded ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The equivalence lockdown for the interpreter fast path
/// (docs/INTERPRETER.md): switch dispatch is the reference semantics, and
/// threaded dispatch — computed goto, superinstruction shadow code, the
/// compiled-out no-hook lane — must be observationally indistinguishable
/// from it.  Every program in the shared corpus (TestPrograms.h plus the
/// fuzz generator) runs under both modes and must produce byte-identical
/// race reports, output, instruction counts, context switches and runtime
/// event streams, with hooks on and off, serial and sharded, across
/// schedule seeds.  Record/replay must also interoperate: a schedule
/// recorded under one mode replays exactly under the other.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "herd/Pipeline.h"
#include "instr/Instrumenter.h"
#include "instr/Superinstr.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

using namespace herd;
using fuzzprogs::generateProgram;

namespace {

//===----------------------------------------------------------------------===
// Corpus
//===----------------------------------------------------------------------===

/// Every named program the repo's unit tests exercise, plus a slice of the
/// fuzz generator's space (the full range runs in the fuzz-level test
/// below).
std::vector<std::pair<std::string, Program>> namedCorpus() {
  std::vector<std::pair<std::string, Program>> Out;
  Out.emplace_back("counter-unlocked",
                   testprogs::buildCounter(/*Locked=*/false, 25).P);
  Out.emplace_back("counter-locked",
                   testprogs::buildCounter(/*Locked=*/true, 25).P);
  Out.emplace_back("figure2", testprogs::buildFigure2(/*SamePQ=*/false));
  Out.emplace_back("figure2-samepq",
                   testprogs::buildFigure2(/*SamePQ=*/true));
  Out.emplace_back("fig3-loop", testprogs::buildFig3Loop(40));
  return Out;
}

//===----------------------------------------------------------------------===
// Pipeline-level equivalence
//===----------------------------------------------------------------------===

/// Asserts that two pipeline results describe the same execution.  The
/// fused-execution counters are deliberately NOT compared: they describe
/// how the work was dispatched, not what the program did.
void expectSameRun(const PipelineResult &Ref, const PipelineResult &Got,
                   const std::string &What) {
  SCOPED_TRACE(What);
  ASSERT_EQ(Ref.Run.Ok, Got.Run.Ok) << Got.Run.Error;
  EXPECT_EQ(Ref.Run.Error, Got.Run.Error);
  EXPECT_EQ(Ref.FormattedRaces, Got.FormattedRaces);
  EXPECT_EQ(Ref.FormattedDeadlocks, Got.FormattedDeadlocks);
  EXPECT_EQ(Ref.Run.Output, Got.Run.Output);
  EXPECT_EQ(Ref.Run.InstructionsExecuted, Got.Run.InstructionsExecuted);
  EXPECT_EQ(Ref.Run.AccessEvents, Got.Run.AccessEvents);
  EXPECT_EQ(Ref.Run.ContextSwitches, Got.Run.ContextSwitches);
  EXPECT_EQ(Ref.Run.ThreadsCreated, Got.Run.ThreadsCreated);
  EXPECT_EQ(Ref.Stats.EventsSeen, Got.Stats.EventsSeen);
  EXPECT_EQ(Ref.Stats.CacheHits, Got.Stats.CacheHits);
  EXPECT_EQ(Ref.Stats.Detector.EventsIn, Got.Stats.Detector.EventsIn);
  EXPECT_EQ(Ref.Stats.Detector.RacesReported,
            Got.Stats.Detector.RacesReported);
}

/// Runs \p P under switch and threaded dispatch with otherwise-identical
/// configs and asserts equivalence; also pins that fusion itself is
/// transparent (threaded with Superinstructions off matches too).
void runBothModes(const Program &P, ToolConfig Config,
                  const std::string &What) {
  Config.Dispatch = DispatchMode::Switch;
  PipelineResult Ref = runPipeline(P, Config);

  Config.Dispatch = DispatchMode::Threaded;
  PipelineResult Thr = runPipeline(P, Config);
  expectSameRun(Ref, Thr, What + " [threaded]");
  EXPECT_EQ(Thr.Dispatch, DispatchMode::Threaded);

  Config.Superinstructions = false;
  PipelineResult NoFuse = runPipeline(P, Config);
  expectSameRun(Ref, NoFuse, What + " [threaded, no fusion]");
  EXPECT_EQ(NoFuse.Fusion.sites(), 0u);
  EXPECT_EQ(NoFuse.Run.Fused.total(), 0u);
}

TEST(DispatchDifferentialTest, NamedProgramsAllConfigs) {
  for (auto &[Name, P] : namedCorpus()) {
    for (uint64_t Seed : {1u, 13u}) {
      for (uint32_t Shards : {0u, 3u}) {
        // Full pipeline: Trace-instrumented hooks (the production path).
        ToolConfig Full = ToolConfig::full();
        Full.Seed = Seed;
        Full.Shards = Shards;
        runBothModes(P, Full,
                     Name + " full seed=" + std::to_string(Seed) +
                         " shards=" + std::to_string(Shards));
      }
      // Base: uninstrumented, so the no-hook lane carries every step.
      ToolConfig Base = ToolConfig::base();
      Base.Seed = Seed;
      runBothModes(P, Base, Name + " base seed=" + std::to_string(Seed));
    }
  }
}

class DispatchFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DispatchFuzzTest, GeneratedProgramsAgree) {
  Program P = generateProgram(GetParam());
  for (uint64_t Seed : {1u, 13u}) {
    ToolConfig Full = ToolConfig::full();
    Full.Seed = Seed;
    runBothModes(P, Full, "fuzz full seed=" + std::to_string(Seed));
  }
  ToolConfig Sharded = ToolConfig::full();
  Sharded.Seed = 7;
  Sharded.Shards = 3;
  runBothModes(P, Sharded, "fuzz sharded");
  ToolConfig Base = ToolConfig::base();
  Base.Seed = 7;
  runBothModes(P, Base, "fuzz base");
}

INSTANTIATE_TEST_SUITE_P(Programs, DispatchFuzzTest,
                         ::testing::Range<uint64_t>(1, 41));

//===----------------------------------------------------------------------===
// Raw-interpreter equivalence: the exact hook event stream
//===----------------------------------------------------------------------===

/// Serializes every RuntimeHooks callback into one line, so two runs can
/// be compared event-for-event (order included).
class EventLog : public RuntimeHooks {
public:
  void onThreadCreate(ThreadId Child, ThreadId Parent, ObjectId Obj,
                      SiteId = SiteId::invalid()) override {
    add("create", Child.index(), Parent.isValid() ? Parent.index() : ~0u,
        Obj.isValid() ? Obj.index() : ~0u);
  }
  void onThreadExit(ThreadId Dying) override {
    add("exit", Dying.index(), 0, 0);
  }
  void onThreadJoin(ThreadId Joiner, ThreadId Joined) override {
    add("join", Joiner.index(), Joined.index(), 0);
  }
  void onMonitorEnter(ThreadId T, LockId L, bool Recursive,
                      SiteId = SiteId::invalid()) override {
    add("enter", T.index(), L.index(), Recursive);
  }
  void onMonitorExit(ThreadId T, LockId L, bool StillHeld) override {
    add("leave", T.index(), L.index(), StillHeld);
  }
  void onAccess(ThreadId T, LocationKey Loc, AccessKind Kind,
                SiteId Site) override {
    std::ostringstream S;
    S << "access t" << T.index() << " loc" << Loc.raw()
      << (Kind == AccessKind::Write ? " W" : " R") << " s"
      << (Site.isValid() ? int64_t(Site.index()) : -1);
    Lines.push_back(S.str());
  }
  void onRunEnd() override { Lines.push_back("end"); }

  const std::vector<std::string> &lines() const { return Lines; }

private:
  void add(const char *Kind, uint64_t A, uint64_t B, uint64_t C) {
    std::ostringstream S;
    S << Kind << ' ' << A << ' ' << B << ' ' << C;
    Lines.push_back(S.str());
  }
  std::vector<std::string> Lines;
};

struct RawRun {
  InterpResult R;
  std::vector<std::string> Events;
  std::string HeapDigest;
  ScheduleTrace Recorded;
};

/// Renders the final heap — every object's identity and slot values — as
/// text, so cross-mode runs can assert end-state equality.
std::string digestHeap(const Heap &H) {
  std::ostringstream S;
  for (uint32_t Id = 0; Id != H.size(); ++Id) {
    const HeapObject &O = H.object(ObjectId(Id));
    S << 'o' << Id << (O.IsArray ? " arr" : "") << ':';
    for (const Value &V : O.Slots) {
      if (V.isRef())
        S << " r" << (V.isNull() ? -1 : int64_t(V.asRef().index()));
      else
        S << ' ' << V.asInt();
    }
    S << '\n';
  }
  return S.str();
}

RawRun runRaw(const Program &P, DispatchMode Mode, uint64_t Seed,
              bool TraceEveryAccess, const ThreadedCode *Fused,
              const ScheduleTrace *Replay = nullptr,
              uint32_t MaxQuantum = 40) {
  RawRun Out;
  EventLog Log;
  InterpOptions Opts;
  Opts.Seed = Seed;
  Opts.MaxQuantum = MaxQuantum;
  Opts.TraceEveryAccess = TraceEveryAccess;
  Opts.Dispatch = Mode;
  Opts.Fused = Mode == DispatchMode::Threaded ? Fused : nullptr;
  Opts.Record = Replay ? nullptr : &Out.Recorded;
  Opts.Replay = Replay;
  Interpreter Interp(P, &Log, Opts);
  Out.R = Interp.run();
  Out.Events = Log.lines();
  Out.HeapDigest = digestHeap(Interp.heap());
  return Out;
}

TEST(DispatchDifferentialTest, EventStreamsAndHeapsIdentical) {
  for (auto &[Name, Plain] : namedCorpus()) {
    // Instrumented variant: Trace instructions drive the hooks, and the
    // superinstruction pass must respect the instrumented-access
    // boundaries the instrumenter created.
    Program Instrumented = Plain;
    InstrumenterOptions IOpts;
    IOpts.UseStaticRaceSet = false;
    IOpts.StaticWeakerThan = false;
    IOpts.LoopPeeling = false;
    instrumentProgram(Instrumented, IOpts, nullptr);
    ASSERT_TRUE(verifyProgram(Instrumented).empty());

    struct Variant {
      const char *Label;
      const Program *P;
      bool EmitAll;
    } Variants[] = {
        {"no hooks", &Plain, false},
        {"trace-every-access", &Plain, true},
        {"instrumented", &Instrumented, false},
    };
    for (const Variant &V : Variants) {
      ThreadedCode TC = buildThreadedCode(*V.P);
      for (uint64_t Seed : {1u, 13u, 21u}) {
        SCOPED_TRACE(Name + " " + V.Label + " seed=" +
                     std::to_string(Seed));
        RawRun Ref = runRaw(*V.P, DispatchMode::Switch, Seed, V.EmitAll,
                            nullptr);
        RawRun Thr = runRaw(*V.P, DispatchMode::Threaded, Seed, V.EmitAll,
                            &TC);
        ASSERT_EQ(Ref.R.Ok, Thr.R.Ok) << Thr.R.Error;
        EXPECT_EQ(Ref.Events, Thr.Events);
        EXPECT_EQ(Ref.HeapDigest, Thr.HeapDigest);
        EXPECT_EQ(Ref.R.Output, Thr.R.Output);
        EXPECT_EQ(Ref.R.InstructionsExecuted, Thr.R.InstructionsExecuted);
        EXPECT_EQ(Ref.R.ContextSwitches, Thr.R.ContextSwitches);

        // The scheduler's decisions — slice by slice — must be identical:
        // this is what keeps seeds, recordings and reports portable
        // across dispatch modes.
        ASSERT_EQ(Ref.Recorded.Slices.size(), Thr.Recorded.Slices.size());
        for (size_t I = 0; I != Ref.Recorded.Slices.size(); ++I) {
          EXPECT_EQ(Ref.Recorded.Slices[I].ThreadIndex,
                    Thr.Recorded.Slices[I].ThreadIndex)
              << "slice " << I;
          EXPECT_EQ(Ref.Recorded.Slices[I].Steps,
                    Thr.Recorded.Slices[I].Steps)
              << "slice " << I;
        }
      }
    }
  }
}

TEST(DispatchDifferentialTest, RecordReplayInteroperates) {
  // A schedule recorded under one dispatch mode must replay exactly under
  // the other — in both directions.
  for (auto &[Name, P] : namedCorpus()) {
    ThreadedCode TC = buildThreadedCode(P);
    RawRun RecSwitch =
        runRaw(P, DispatchMode::Switch, 21, /*TraceEveryAccess=*/true,
               nullptr);
    RawRun RecThreaded =
        runRaw(P, DispatchMode::Threaded, 21, /*TraceEveryAccess=*/true,
               &TC);
    ASSERT_TRUE(RecSwitch.R.Ok) << RecSwitch.R.Error;

    RawRun ReplayThr =
        runRaw(P, DispatchMode::Threaded, 99, /*TraceEveryAccess=*/true,
               &TC, &RecSwitch.Recorded);
    RawRun ReplaySw =
        runRaw(P, DispatchMode::Switch, 99, /*TraceEveryAccess=*/true,
               nullptr, &RecThreaded.Recorded);
    SCOPED_TRACE(Name);
    ASSERT_TRUE(ReplayThr.R.Ok) << ReplayThr.R.Error;
    ASSERT_TRUE(ReplaySw.R.Ok) << ReplaySw.R.Error;
    EXPECT_EQ(RecSwitch.Events, ReplayThr.Events);
    EXPECT_EQ(RecSwitch.HeapDigest, ReplayThr.HeapDigest);
    EXPECT_EQ(RecSwitch.Events, ReplaySw.Events);
    EXPECT_EQ(RecSwitch.HeapDigest, ReplaySw.HeapDigest);
    EXPECT_EQ(RecSwitch.R.Output, ReplayThr.R.Output);
    EXPECT_EQ(RecSwitch.R.Output, ReplaySw.R.Output);
  }
}

/// Compares a switch run and a threaded run step-for-step: events, heap,
/// output, counts, and the recorded schedule slice by slice.
void expectRawEqual(const RawRun &Ref, const RawRun &Thr) {
  ASSERT_EQ(Ref.R.Ok, Thr.R.Ok) << Thr.R.Error;
  EXPECT_EQ(Ref.R.Error, Thr.R.Error);
  EXPECT_EQ(Ref.Events, Thr.Events);
  EXPECT_EQ(Ref.HeapDigest, Thr.HeapDigest);
  EXPECT_EQ(Ref.R.Output, Thr.R.Output);
  EXPECT_EQ(Ref.R.InstructionsExecuted, Thr.R.InstructionsExecuted);
  EXPECT_EQ(Ref.R.ContextSwitches, Thr.R.ContextSwitches);
  ASSERT_EQ(Ref.Recorded.Slices.size(), Thr.Recorded.Slices.size());
  for (size_t I = 0; I != Ref.Recorded.Slices.size(); ++I) {
    EXPECT_EQ(Ref.Recorded.Slices[I].ThreadIndex,
              Thr.Recorded.Slices[I].ThreadIndex)
        << "slice " << I;
    EXPECT_EQ(Ref.Recorded.Slices[I].Steps, Thr.Recorded.Slices[I].Steps)
        << "slice " << I;
  }
}

TEST(DispatchDifferentialTest, QuantumEdgesStayIdentical) {
  // MaxQuantum=1 and 2 are the nastiest cases for the fast path: every
  // superinstruction has more constituents than the remaining quantum, so
  // the threaded loop must take the fall-back-to-plain lane on virtually
  // every fused site, and block batches can almost never fit.  The
  // schedule, events and accounting must still match the per-step switch
  // interpreter byte for byte.
  uint64_t FusedSites = 0;
  for (auto &[Name, P] : namedCorpus()) {
    ThreadedCode TC = buildThreadedCode(P);
    FusedSites += TC.Stats.sites();
    for (uint32_t MaxQ : {1u, 2u}) {
      for (uint64_t Seed : {1u, 13u}) {
        SCOPED_TRACE(Name + " maxq=" + std::to_string(MaxQ) +
                     " seed=" + std::to_string(Seed));
        RawRun Ref = runRaw(P, DispatchMode::Switch, Seed,
                            /*TraceEveryAccess=*/true, nullptr, nullptr,
                            MaxQ);
        RawRun Thr = runRaw(P, DispatchMode::Threaded, Seed,
                            /*TraceEveryAccess=*/true, &TC, nullptr, MaxQ);
        expectRawEqual(Ref, Thr);
      }
    }
  }
  EXPECT_GT(FusedSites, 0u) << "corpus must exercise fused fall-back lanes";
}

TEST(DispatchDifferentialTest, ForcedBatchesStayIdentical) {
  // The default MinBatchLen leaves short blocks unbatched, so the batch
  // runtime path would go untested on small corpus programs.  Force it:
  // with MinBatchLen=2 every eligible prefix is planned, and the threaded
  // run must both take the batch path (hits > 0) and stay byte-identical
  // to switch dispatch — including at quantum edges where batches only
  // sometimes fit in the remaining quantum.
  SuperinstrOptions SOpts;
  SOpts.MinBatchLen = 2;
  bool SawBatches = false;
  for (auto &[Name, P] : namedCorpus()) {
    ThreadedCode TC = buildThreadedCode(P, SOpts);
    for (uint32_t MaxQ : {1u, 2u, 5u, 40u}) {
      for (uint64_t Seed : {1u, 13u}) {
        SCOPED_TRACE(Name + " maxq=" + std::to_string(MaxQ) +
                     " seed=" + std::to_string(Seed));
        RawRun Ref = runRaw(P, DispatchMode::Switch, Seed,
                            /*TraceEveryAccess=*/true, nullptr, nullptr,
                            MaxQ);
        RawRun Thr = runRaw(P, DispatchMode::Threaded, Seed,
                            /*TraceEveryAccess=*/true, &TC, nullptr, MaxQ);
        expectRawEqual(Ref, Thr);
        if (Thr.R.BlockRetireHits > 0) {
          SawBatches = true;
          EXPECT_GE(Thr.R.BlockRetiredSteps, Thr.R.BlockRetireHits);
        }
      }
    }
  }
  EXPECT_TRUE(SawBatches)
      << "no run ever entered a batch; the batch path went untested";
}

TEST(DispatchDifferentialTest, FusionActuallyFires) {
  // Guard against the differential suite silently passing because nothing
  // fused: the counter program's increment is the canonical
  // GetField;Const;BinOp;PutField sequence.
  Program P = testprogs::buildCounter(/*Locked=*/false, 25).P;
  ThreadedCode TC = buildThreadedCode(P);
  EXPECT_GT(TC.Stats.sites(), 0u);
  RawRun Thr = runRaw(P, DispatchMode::Threaded, 1,
                      /*TraceEveryAccess=*/false, &TC);
  ASSERT_TRUE(Thr.R.Ok) << Thr.R.Error;
  EXPECT_GT(Thr.R.Fused.total(), 0u);

  // And under switch dispatch the counters stay zero.
  RawRun Ref = runRaw(P, DispatchMode::Switch, 1,
                      /*TraceEveryAccess=*/false, &TC);
  EXPECT_EQ(Ref.R.Fused.total(), 0u);
}

} // namespace
