//===- tests/race_runtime_test.cpp - End-to-end detection tests -----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the full runtime pipeline (cache -> ownership -> trie) driven
/// both synthetically and by interpreted MiniJ programs, including the
/// paper's Figure 2 example and the mtrt join idiom of Section 8.3.
///
//===----------------------------------------------------------------------===//

#include "detect/RaceRuntime.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "runtime/Interpreter.h"

#include <gtest/gtest.h>

using namespace herd;

namespace {

constexpr AccessKind RD = AccessKind::Read;
constexpr AccessKind WR = AccessKind::Write;

LocationKey keyOf(uint32_t Obj, uint32_t Field = 0) {
  return LocationKey::forField(ObjectId(Obj), FieldId(Field));
}

TEST(RaceRuntimeTest, LockSetTracksMonitorsAndIgnoresRecursion) {
  RaceRuntime RT;
  ThreadId T(1);
  RT.onThreadCreate(T, ThreadId(0), ObjectId(9));
  RT.onMonitorEnter(T, LockId(5), /*Recursive=*/false);
  RT.onMonitorEnter(T, LockId(5), /*Recursive=*/true);
  RT.onMonitorEnter(T, LockId(6), /*Recursive=*/false);
  LockSet Locks = RT.lockSetOf(T);
  EXPECT_TRUE(Locks.contains(LockId(5)));
  EXPECT_TRUE(Locks.contains(LockId(6)));
  EXPECT_TRUE(Locks.contains(RaceRuntime::dummyLockOf(T)));
  RT.onMonitorExit(T, LockId(6), /*StillHeld=*/false);
  RT.onMonitorExit(T, LockId(5), /*StillHeld=*/true);
  Locks = RT.lockSetOf(T);
  EXPECT_TRUE(Locks.contains(LockId(5))); // nested exit: still held
  EXPECT_FALSE(Locks.contains(LockId(6)));
}

TEST(RaceRuntimeTest, JoinAddsPermanentDummyLock) {
  RaceRuntime RT;
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(5));
  RT.onThreadExit(ThreadId(1));
  RT.onThreadJoin(ThreadId(0), ThreadId(1));
  EXPECT_TRUE(
      RT.lockSetOf(ThreadId(0)).contains(RaceRuntime::dummyLockOf(ThreadId(1))));
  // The exited thread no longer holds its own dummy lock.
  EXPECT_FALSE(
      RT.lockSetOf(ThreadId(1)).contains(RaceRuntime::dummyLockOf(ThreadId(1))));
}

TEST(RaceRuntimeTest, MtrtJoinIdiomNotReported) {
  // Section 8.3: children access statistics under a common lock c; the
  // parent accesses them after join without c.  Locksets {S1,c}, {S2,c},
  // {S1,S2} are mutually intersecting: no race, although no single lock is
  // common to all three (Eraser would report).
  RaceRuntime RT;
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(10));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(11));
  LockId C(5);

  auto AccessUnder = [&](ThreadId T) {
    RT.onMonitorEnter(T, C, false);
    RT.onAccess(T, keyOf(1), WR, SiteId());
    RT.onMonitorExit(T, C, false);
  };
  AccessUnder(ThreadId(1));
  AccessUnder(ThreadId(2));
  RT.onThreadExit(ThreadId(1));
  RT.onThreadExit(ThreadId(2));
  RT.onThreadJoin(ThreadId(0), ThreadId(1));
  RT.onThreadJoin(ThreadId(0), ThreadId(2));
  RT.onAccess(ThreadId(0), keyOf(1), WR, SiteId()); // no lock held
  EXPECT_TRUE(RT.reporter().empty());
}

TEST(RaceRuntimeTest, WithoutJoinModelingTheIdiomIsReported) {
  RaceRuntimeOptions Opts;
  Opts.ModelJoin = false;
  RaceRuntime RT(Opts);
  RT.onThreadCreate(ThreadId(0), ThreadId::invalid(), ObjectId::invalid());
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(10));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(11));
  LockId C(5);
  auto AccessUnder = [&](ThreadId T) {
    RT.onMonitorEnter(T, C, false);
    RT.onAccess(T, keyOf(1), WR, SiteId());
    RT.onMonitorExit(T, C, false);
  };
  AccessUnder(ThreadId(1));
  AccessUnder(ThreadId(2));
  RT.onThreadJoin(ThreadId(0), ThreadId(1));
  RT.onThreadJoin(ThreadId(0), ThreadId(2));
  RT.onAccess(ThreadId(0), keyOf(1), WR, SiteId());
  EXPECT_FALSE(RT.reporter().empty());
}

TEST(RaceRuntimeTest, CacheHitsSuppressDetectorTraffic) {
  RaceRuntime RT;
  ThreadId T(1);
  RT.onThreadCreate(T, ThreadId(0), ObjectId(9));
  for (int I = 0; I != 1000; ++I)
    RT.onAccess(T, keyOf(1), WR, SiteId());
  RaceRuntimeStats S = RT.stats();
  EXPECT_EQ(S.EventsSeen, 1000u);
  EXPECT_EQ(S.CacheHits, 999u);
  EXPECT_EQ(S.Detector.EventsIn, 1u);
}

TEST(RaceRuntimeTest, SharedTransitionEvictsOwnerCacheEntry) {
  // Section 7.2: without forced eviction, the owner's cached entry would
  // suppress its first post-sharing access and the race would be missed.
  RaceRuntime RT;
  RT.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(8));
  RT.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(9));
  RT.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // owner; cached
  RT.onAccess(ThreadId(2), keyOf(1), WR, SiteId()); // shares the location
  RT.onAccess(ThreadId(1), keyOf(1), WR, SiteId()); // must NOT hit cache
  EXPECT_EQ(RT.reporter().size(), 1u);
}

TEST(RaceRuntimeTest, CacheTransparencyOnSyntheticStreams) {
  // Property 3 of DESIGN.md: the cache never changes reported locations.
  for (uint64_t Seed = 1; Seed != 6; ++Seed) {
    Rng R(Seed);
    // Pre-generate a random schedule of accesses and sync operations.
    struct Op {
      int Kind; // 0 access, 1 enter, 2 exit
      uint32_t Thread;
      uint32_t Value; // object or lock
      AccessKind Access;
    };
    std::vector<Op> Ops;
    uint32_t HeldLock[3] = {0, 0, 0}; // 0 = none
    for (int I = 0; I != 2000; ++I) {
      Op O;
      O.Thread = uint32_t(R.nextBelow(3));
      uint32_t &Held = HeldLock[O.Thread];
      switch (R.nextBelow(4)) {
      case 0:
        if (Held == 0) {
          O.Kind = 1;
          O.Value = 1 + uint32_t(R.nextBelow(2));
          Held = O.Value;
          break;
        }
        [[fallthrough]];
      case 1:
        if (Held != 0 && R.nextChance(1, 2)) {
          O.Kind = 2;
          O.Value = Held;
          Held = 0;
          break;
        }
        [[fallthrough]];
      default:
        O.Kind = 0;
        O.Value = 100 + uint32_t(R.nextBelow(4)); // object
        O.Access = R.nextChance(1, 2) ? WR : RD;
        break;
      }
      Ops.push_back(O);
    }

    auto RunWith = [&](bool UseCache) {
      RaceRuntimeOptions Opts;
      Opts.UseCache = UseCache;
      RaceRuntime RT(Opts);
      for (uint32_t T = 0; T != 3; ++T)
        RT.onThreadCreate(ThreadId(T), ThreadId::invalid(), ObjectId::invalid());
      for (const Op &O : Ops) {
        ThreadId T(O.Thread);
        if (O.Kind == 1)
          RT.onMonitorEnter(T, LockId(O.Value), false);
        else if (O.Kind == 2)
          RT.onMonitorExit(T, LockId(O.Value), false);
        else
          RT.onAccess(T, keyOf(O.Value), O.Access, SiteId());
      }
      return RT.reporter().reportedLocations();
    };

    EXPECT_EQ(RunWith(true), RunWith(false)) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===
// Figure 2 end-to-end.
//===----------------------------------------------------------------------===

/// Builds the paper's Figure 2 program.  \p SamePQ selects the Section 2.2
/// variant where the two synchronized blocks use the same lock object.
struct Fig2Program {
  Program P;
  FieldId F, G;
};

Fig2Program buildFigure2(bool SamePQ) {
  Fig2Program Out;
  IRBuilder B(Out.P);
  ClassId Data = B.makeClass("Data");
  Out.F = B.makeField(Data, "f");
  Out.G = B.makeField(Data, "g");
  ClassId LockCls = B.makeClass("LockObj");

  // class Child1 { Data a; Data b; LockObj p; synchronized foo() {...} }
  ClassId Child1 = B.makeClass("Child1");
  FieldId C1A = B.makeField(Child1, "a");
  FieldId C1B = B.makeField(Child1, "b");
  FieldId C1P = B.makeField(Child1, "p");
  MethodId Foo = B.startMethod(Child1, "foo", 1, /*IsStatic=*/false,
                               /*IsSynchronized=*/true); // T10
  {
    B.site("T11");
    RegId A = B.emitGetField(B.thisReg(), C1A);
    B.emitPutField(A, Out.F, B.emitConst(50)); // T11: a.f = 50
    RegId Pl = B.emitGetField(B.thisReg(), C1P);
    B.sync(Pl, [&] { // T13: synchronized(p)
      B.site("T14");
      RegId Bo = B.emitGetField(B.thisReg(), C1B);
      RegId Read = B.emitGetField(Bo, Out.F); // T14: ... = b.f
      B.emitPutField(Bo, Out.G, Read);        // T14: b.g = ...
    });
    B.emitReturn();
  }
  B.startMethod(Child1, "run", 1);
  B.emitCallVoid(Foo, {B.thisReg()});
  B.emitReturn();

  // class Child2 { Data d; LockObj q; run() { synchronized(q) d.f = 10 } }
  ClassId Child2 = B.makeClass("Child2");
  FieldId C2D = B.makeField(Child2, "d");
  FieldId C2Q = B.makeField(Child2, "q");
  B.startMethod(Child2, "run", 1);
  {
    RegId Q = B.emitGetField(B.thisReg(), C2Q);
    B.sync(Q, [&] { // T20: synchronized(q)
      B.site("T21");
      RegId D = B.emitGetField(B.thisReg(), C2D);
      B.emitPutField(D, Out.F, B.emitConst(10)); // T21: d.f = 10
    });
    B.emitReturn();
  }

  // main
  B.startMain();
  RegId X = B.emitNew(Data);
  B.site("T01");
  B.emitPutField(X, Out.F, B.emitConst(100)); // T01: x.f = 100
  RegId T1 = B.emitNew(Child1);               // T02
  RegId T2 = B.emitNew(Child2);               // T03
  RegId PLock = B.emitNew(LockCls);
  RegId QLock = SamePQ ? PLock : B.emitNew(LockCls);
  B.emitPutField(T1, C1A, X);
  B.emitPutField(T1, C1B, X);
  B.emitPutField(T1, C1P, PLock);
  B.emitPutField(T2, C2D, X);
  B.emitPutField(T2, C2Q, QLock);
  B.emitThreadStart(T1); // T04
  B.emitThreadStart(T2); // T05
  B.emitReturn();
  return Out;
}

std::set<LocationKey> runFigure2(bool SamePQ, uint64_t Seed,
                                 RaceRuntime &RT) {
  Fig2Program Fig = buildFigure2(SamePQ);
  EXPECT_TRUE(verifyProgram(Fig.P).empty());
  InterpOptions Opts;
  Opts.Seed = Seed;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(Fig.P, &RT, Opts);
  InterpResult R = Interp.run();
  EXPECT_TRUE(R.Ok) << R.Error;
  return RT.reporter().reportedLocations();
}

TEST(Figure2Test, RaceOnFReportedAndNothingElse) {
  for (uint64_t Seed : {1u, 7u, 42u}) {
    RaceRuntime RT;
    std::set<LocationKey> Locs = runFigure2(/*SamePQ=*/false, Seed, RT);
    // Exactly one racy location: the shared Data object's field f.
    ASSERT_EQ(Locs.size(), 1u) << "seed " << Seed;
    // T01's main-thread initialization must not be implicated: ownership
    // absorbed it (the start-order approximation of Section 2.3).
    for (const RaceRecord &Rec : RT.reporter().records())
      EXPECT_NE(Rec.CurrentThread, ThreadId(0));
  }
}

TEST(Figure2Test, FeasibleRaceStillReportedWhenLocksCoincide) {
  // Section 2.2: with p == q, a happened-before detector that witnesses
  // T1's critical section before T2's would miss the race between T11 and
  // T21; the lockset approach reports it for every schedule.
  for (uint64_t Seed : {1u, 7u, 42u, 1000u}) {
    RaceRuntime RT;
    std::set<LocationKey> Locs = runFigure2(/*SamePQ=*/true, Seed, RT);
    EXPECT_EQ(Locs.size(), 1u) << "seed " << Seed;
  }
}

TEST(Figure2Test, FieldGNeverReported) {
  RaceRuntime RT;
  runFigure2(false, 3, RT);
  Fig2Program Fig = buildFigure2(false);
  for (const RaceRecord &Rec : RT.reporter().records()) {
    // LocationKey packs the field id in the low 32 bits for field keys.
    EXPECT_EQ(uint32_t(Rec.Location.raw() & 0xFFFFFFFF), Fig.F.index());
  }
}

TEST(Figure2Test, DeterministicReportsAcrossIdenticalRuns) {
  RaceRuntime RT1, RT2;
  auto L1 = runFigure2(false, 11, RT1);
  auto L2 = runFigure2(false, 11, RT2);
  EXPECT_EQ(L1, L2);
  EXPECT_EQ(RT1.reporter().size(), RT2.reporter().size());
}

} // namespace
