//===- tests/hotpath_test.cpp - Hot-path building blocks ------------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the allocation-lean detector hot path (docs/PERFORMANCE.md):
/// the LockSetInterner against a SortedIdSet oracle (including the >64-lock
/// inexact path), Arena index stability and recycling, the TrieEdgePool,
/// and differential replays proving the interned/sharded paths produce the
/// identical RaceReport stream as the original handleAccess path.
///
//===----------------------------------------------------------------------===//

#include "FuzzPrograms.h"
#include "TestPrograms.h"
#include "detect/AccessTrie.h"
#include "detect/Detector.h"
#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "detect/TraceFile.h"
#include "runtime/Interpreter.h"
#include "support/Arena.h"
#include "support/LockSetInterner.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <tuple>
#include <vector>

using namespace herd;

namespace {

//===----------------------------------------------------------------------===
// LockSetInterner vs the SortedIdSet oracle
//===----------------------------------------------------------------------===

LockSet makeSet(std::initializer_list<uint32_t> Locks) {
  LockSet S;
  for (uint32_t L : Locks)
    S.insert(LockId(L));
  return S;
}

TEST(LockSetInterner, CanonicalIds) {
  LockSetInterner I;
  EXPECT_EQ(I.intern(LockSet()), LockSetInterner::emptySet());

  LockSetId A = I.intern(makeSet({3, 7}));
  LockSetId B = I.intern(makeSet({7, 3})); // same set, insertion order moot
  LockSetId C = I.intern(makeSet({3}));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_EQ(I.size(), 3u); // empty, {3,7}, {3}

  // resolve() returns the canonical sorted set.
  const LockSet &Back = I.resolve(A);
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_TRUE(Back.contains(LockId(3)));
  EXPECT_TRUE(Back.contains(LockId(7)));
}

TEST(LockSetInterner, EmptySetQueries) {
  LockSetInterner I;
  LockSetId E = LockSetInterner::emptySet();
  LockSetId A = I.intern(makeSet({1}));
  EXPECT_TRUE(I.isSubsetOf(E, A));
  EXPECT_TRUE(I.isSubsetOf(E, E));
  EXPECT_FALSE(I.isSubsetOf(A, E));
  EXPECT_FALSE(I.intersects(E, A));
  EXPECT_FALSE(I.intersects(E, E));
}

/// Randomized subset/intersect agreement with the SortedIdSet oracle.
/// \p Universe controls whether sets stay inside the 64-dense-lock fast
/// path or spill into the memoized inexact path.
void checkAgainstOracle(uint32_t Universe, uint64_t Seed) {
  Rng R(Seed);
  LockSetInterner I;
  std::vector<std::pair<LockSetId, LockSet>> Sets;
  for (int N = 0; N != 200; ++N) {
    LockSet S;
    size_t Size = R.nextBelow(6);
    for (size_t J = 0; J != Size; ++J)
      S.insert(LockId(uint32_t(R.nextBelow(Universe))));
    Sets.push_back({I.intern(S), S});
  }
  for (int N = 0; N != 2000; ++N) {
    auto &[IdA, SetA] = Sets[R.nextBelow(Sets.size())];
    auto &[IdB, SetB] = Sets[R.nextBelow(Sets.size())];
    EXPECT_EQ(I.isSubsetOf(IdA, IdB), SetA.isSubsetOf(SetB));
    EXPECT_EQ(I.intersects(IdA, IdB), SetA.intersects(SetB));
    // Memoized answers must be stable on repeat queries.
    EXPECT_EQ(I.isSubsetOf(IdA, IdB), SetA.isSubsetOf(SetB));
  }
}

TEST(LockSetInterner, OracleSmallUniverse) {
  checkAgainstOracle(/*Universe=*/16, /*Seed=*/1);
}

TEST(LockSetInterner, OracleExactly64) {
  checkAgainstOracle(/*Universe=*/64, /*Seed=*/2);
}

TEST(LockSetInterner, OracleSpillsPast64Locks) {
  // 200 lock ids: most sets contain locks whose dense index lands >= 64,
  // exercising the inexact masks and the memoized fallback.
  checkAgainstOracle(/*Universe=*/200, /*Seed=*/3);
}

TEST(LockSetInterner, BoundedMemoOracleAcrossEvictions) {
  // The subset/intersect memo is a fixed-size 2-way table with round-robin
  // eviction.  Drive far more distinct inexact pairs through it than it
  // can hold, so entries are evicted and later re-computed, and check every
  // answer (first ask, memo hit, and post-eviction re-ask) against the
  // SortedIdSet oracle.
  LockSetInterner I;
  // Saturate the 64-slot dense universe so every test set below (built
  // from locks 100..399 only) is inexact — the memoized slow path.
  for (uint32_t L = 0; L != 64; ++L)
    I.intern(makeSet({L}));
  std::vector<std::pair<LockSetId, LockSet>> Sets;
  Rng R(17);
  for (int N = 0; N != 120; ++N) {
    LockSet S;
    size_t Size = 1 + R.nextBelow(5);
    for (size_t J = 0; J != Size; ++J)
      S.insert(LockId(uint32_t(100 + R.nextBelow(300))));
    Sets.push_back({I.intern(S), S});
  }
  // 120*120 = 14400 ordered pairs >> 512 sets * 2 ways = 1024 memo slots:
  // three sweeps guarantee evictions and post-eviction recomputation.
  // (Sequential sweeps alone cannot produce hits — each entry is evicted
  // before its next use — so the immediate re-ask below is what pins the
  // hit path: nothing can evict a subset-memo entry between back-to-back
  // queries of the same pair.)
  for (int Sweep = 0; Sweep != 3; ++Sweep)
    for (auto &[IdA, SetA] : Sets)
      for (auto &[IdB, SetB] : Sets) {
        ASSERT_EQ(I.isSubsetOf(IdA, IdB), SetA.isSubsetOf(SetB));
        ASSERT_EQ(I.intersects(IdA, IdB), SetA.intersects(SetB));
        ASSERT_EQ(I.isSubsetOf(IdA, IdB), SetA.isSubsetOf(SetB));
      }
  // The table is far smaller than the pair space, so the run must have
  // missed, hit (the immediate re-asks), and evicted.
  EXPECT_GT(I.memoMisses(), 1024u);
  EXPECT_GT(I.memoHits(), 0u);
  EXPECT_GT(I.memoEvictions(), 0u);
}

TEST(LockSetInterner, MixedExactAndInexact) {
  LockSetInterner I;
  // Fill the 64-slot dense universe first with 64 singleton sets.
  for (uint32_t L = 0; L != 64; ++L)
    I.intern(makeSet({L}));
  EXPECT_EQ(I.lockUniverse(), 64u);
  LockSetId Exact = I.intern(makeSet({1, 2}));
  LockSetId Inexact = I.intern(makeSet({1, 2, 900})); // 900 -> index 64
  LockSetId Other = I.intern(makeSet({900}));
  EXPECT_TRUE(I.isSubsetOf(Exact, Inexact));
  EXPECT_FALSE(I.isSubsetOf(Inexact, Exact));
  EXPECT_TRUE(I.intersects(Inexact, Other));
  EXPECT_FALSE(I.intersects(Exact, Other));
}

//===----------------------------------------------------------------------===
// Arena: index stability, recycling, reset
//===----------------------------------------------------------------------===

TEST(Arena, IndicesStableAcrossGrowth) {
  Arena<uint64_t> A;
  // Far more than one chunk, and keep checking early slots as it grows.
  const uint32_t N = Arena<uint64_t>::ChunkSize * 3 + 17;
  std::vector<uint32_t> Indices;
  for (uint32_t I = 0; I != N; ++I) {
    uint32_t Idx = A.allocate();
    A[Idx] = uint64_t(I) * 0x9E3779B9u;
    Indices.push_back(Idx);
  }
  EXPECT_EQ(A.live(), N);
  for (uint32_t I = 0; I != N; ++I)
    EXPECT_EQ(A[Indices[I]], uint64_t(I) * 0x9E3779B9u);
}

TEST(Arena, ReleaseRecyclesAndRedefaults) {
  Arena<uint64_t> A;
  uint32_t X = A.allocate();
  uint32_t Y = A.allocate();
  A[X] = 111;
  A[Y] = 222;
  A.release(X);
  EXPECT_EQ(A.live(), 1u);
  uint32_t Z = A.allocate(); // LIFO free list hands X back
  EXPECT_EQ(Z, X);
  EXPECT_EQ(A[Z], 0u); // recycled slot is re-defaulted
  EXPECT_EQ(A[Y], 222u);
  EXPECT_EQ(A.live(), 2u);
  EXPECT_EQ(A.capacityUsed(), 2u);
}

TEST(Arena, ResetKeepsStorageButDropsSlots) {
  Arena<uint64_t> A;
  for (int I = 0; I != 100; ++I)
    A[A.allocate()] = 7;
  A.reset();
  EXPECT_EQ(A.live(), 0u);
  EXPECT_EQ(A.capacityUsed(), 0u);
  uint32_t X = A.allocate();
  EXPECT_EQ(X, 0u);
  EXPECT_EQ(A[X], 0u); // stale chunk slot was re-defaulted
}

//===----------------------------------------------------------------------===
// TrieEdgePool: block recycling, aliasing, large blocks
//===----------------------------------------------------------------------===

TEST(TrieEdgePool, BlocksDoNotAlias) {
  TrieEdgePool P;
  std::vector<uint32_t> Blocks;
  for (uint32_t I = 0; I != 64; ++I) {
    uint32_t B = P.allocate(2); // capacity-4 blocks
    for (uint32_t J = 0; J != 4; ++J) {
      P.at(B)[J].Label = LockId(I * 4 + J);
      P.at(B)[J].Child = I * 4 + J;
    }
    Blocks.push_back(B);
  }
  for (uint32_t I = 0; I != 64; ++I)
    for (uint32_t J = 0; J != 4; ++J) {
      EXPECT_EQ(P.at(Blocks[I])[J].Label, LockId(I * 4 + J));
      EXPECT_EQ(P.at(Blocks[I])[J].Child, I * 4 + J);
    }
}

TEST(TrieEdgePool, ReleaseRecyclesPerClass) {
  TrieEdgePool P;
  uint32_t A = P.allocate(3);
  uint32_t B = P.allocate(3);
  P.release(A, 3);
  P.release(B, 3);
  // LIFO per-class free list: B then A, and no fresh storage.
  EXPECT_EQ(P.allocate(3), B);
  EXPECT_EQ(P.allocate(3), A);
  // A different class does not poach from class 3's free list.
  uint32_t C = P.allocate(1);
  EXPECT_NE(C, A);
  EXPECT_NE(C, B);
}

TEST(TrieEdgePool, BlocksNeverStraddleChunks) {
  TrieEdgePool P;
  // Mixed-class allocation pattern; every block must stay inside one
  // chunk, i.e. start/end land in the same ChunkSize window.
  Rng R(7);
  for (int I = 0; I != 500; ++I) {
    uint8_t Class = uint8_t(R.nextBelow(8));
    uint32_t B = P.allocate(Class);
    uint32_t Cap = 1u << Class;
    EXPECT_EQ(B / TrieEdgePool::ChunkSize,
              (B + Cap - 1) / TrieEdgePool::ChunkSize);
    // Touch both ends: would fault or corrupt a neighbour if misplaced.
    P.at(B)[0].Child = I;
    P.at(B)[Cap - 1].Child = I;
  }
}

TEST(TrieEdgePool, LargeBlocks) {
  TrieEdgePool P;
  uint8_t Class = TrieEdgePool::MaxInlineClass + 1;
  uint32_t Cap = 1u << Class;
  uint32_t A = P.allocate(Class);
  for (uint32_t J = 0; J != Cap; ++J)
    P.at(A)[J].Child = J;
  uint32_t B = P.allocate(Class);
  P.at(B)[0].Child = 0xABCD;
  EXPECT_EQ(P.at(A)[0].Child, 0u);
  EXPECT_EQ(P.at(A)[Cap - 1].Child, Cap - 1);
  P.release(A, Class);
  EXPECT_EQ(P.allocate(Class), A); // recycled, not refreshed
  P.release(B, Class);
  P.release(A, Class);
}

//===----------------------------------------------------------------------===
// Differential replays: one event stream, identical race reports
//===----------------------------------------------------------------------===

/// A RaceRecord as a comparable value (locksets flattened to index lists).
using RecordKey =
    std::tuple<uint64_t, uint32_t, int, std::vector<uint32_t>, uint32_t,
               bool, uint32_t, int, std::vector<uint32_t>>;

RecordKey keyOf(const RaceRecord &R) {
  std::vector<uint32_t> Cur, Prior;
  for (LockId L : R.CurrentLocks)
    Cur.push_back(L.index());
  for (LockId L : R.PriorLocks)
    Prior.push_back(L.index());
  return {R.Location.raw(),
          R.CurrentThread.index(),
          int(R.CurrentAccess),
          std::move(Cur),
          R.CurrentSite.index(),
          R.PriorThreadKnown,
          R.PriorThreadKnown ? R.PriorThread.index() : 0,
          int(R.PriorAccess),
          std::move(Prior)};
}

std::vector<RecordKey> keysOf(const RaceReporter &Reporter) {
  std::vector<RecordKey> Keys;
  for (const RaceRecord &R : Reporter.records())
    Keys.push_back(keyOf(R));
  return Keys;
}

/// Executes \p P once, streaming every event both to a live serial runtime
/// and to a trace file; then replays the trace through a second serial
/// runtime and through sharded runtimes.  The live run and the serial
/// replay must produce the byte-identical report stream (same records,
/// same order); the sharded runtimes must produce the same multiset of
/// records (shards interleave report emission, but each location's
/// detector sees the identical ordered event sequence).
void checkDifferential(const Program &P, uint64_t Seed,
                       const std::string &TracePath) {
  RaceRuntime Live;
  TraceWriter Writer;
  ASSERT_TRUE(Writer.open(TracePath).Ok);
  FanoutHooks Fanout{&Writer, &Live};

  InterpOptions Opts;
  Opts.Seed = Seed;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Fanout, Opts);
  InterpResult R = Interp.run();
  ASSERT_TRUE(R.Ok) << R.Error;
  ASSERT_TRUE(Writer.close().Ok);

  std::vector<RecordKey> LiveKeys = keysOf(Live.reporter());

  {
    RaceRuntime Replayed;
    TraceReader Reader;
    ASSERT_TRUE(Reader.open(TracePath).Ok);
    ASSERT_TRUE(Reader.replayInto(Replayed).Ok);
    Replayed.onRunEnd();
    EXPECT_EQ(keysOf(Replayed.reporter()), LiveKeys)
        << "serial replay diverged from the live run";
  }

  std::vector<RecordKey> SortedLive = LiveKeys;
  std::sort(SortedLive.begin(), SortedLive.end());
  for (uint32_t Shards : {1u, 2u, 4u}) {
    ShardedRuntimeOptions SOpts;
    SOpts.NumShards = Shards;
    ShardedRuntime Sharded(SOpts);
    TraceReader Reader;
    ASSERT_TRUE(Reader.open(TracePath).Ok);
    ASSERT_TRUE(Reader.replayInto(Sharded).Ok);
    Sharded.onRunEnd();
    std::vector<RecordKey> Keys = keysOf(Sharded.reporter());
    std::sort(Keys.begin(), Keys.end());
    EXPECT_EQ(Keys, SortedLive)
        << "sharded replay (" << Shards << " shards) diverged";
  }

  std::remove(TracePath.c_str());
}

TEST(HotPathDifferential, HandWrittenPrograms) {
  // Figure 2 in both flavours (distinct locks = racy, same lock = clean)
  // and the Figure 3 loop.
  checkDifferential(testprogs::buildFigure2(/*SamePQ=*/false), 1,
                    "/tmp/herd_hotpath_diff_fig2racy.trace");
  checkDifferential(testprogs::buildFigure2(/*SamePQ=*/true), 1,
                    "/tmp/herd_hotpath_diff_fig2clean.trace");
  checkDifferential(testprogs::buildFig3Loop(16), 1,
                    "/tmp/herd_hotpath_diff_fig3.trace");
}

TEST(HotPathDifferential, FuzzedPrograms) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    Program P = fuzzprogs::generateProgram(Seed);
    checkDifferential(P, Seed,
                      "/tmp/herd_hotpath_diff_fuzz" + std::to_string(Seed) +
                          ".trace");
  }
}

/// handleAccess (owning lockset) against handleEvent (pre-interned id):
/// the two ingestion paths of the standalone Detector must agree record
/// for record.
TEST(HotPathDifferential, HandleAccessVsHandleEvent) {
  Rng R(42);
  std::vector<AccessEvent> Events;
  for (int I = 0; I != 4000; ++I) {
    AccessEvent E;
    E.Location =
        LocationKey::forField(ObjectId(uint32_t(R.nextBelow(32))),
                              FieldId(uint32_t(R.nextBelow(2))));
    E.Thread = ThreadId(uint32_t(1 + R.nextBelow(4)));
    size_t Locks = R.nextBelow(3);
    for (size_t J = 0; J != Locks; ++J)
      E.Locks.insert(LockId(uint32_t(R.nextBelow(6))));
    E.Access = R.nextChance(1, 3) ? AccessKind::Write : AccessKind::Read;
    E.Site = SiteId(uint32_t(R.nextBelow(8)));
    Events.push_back(std::move(E));
  }

  RaceReporter ViaAccess, ViaEvent;
  Detector A(ViaAccess, {});
  Detector B(ViaEvent, {});
  for (const AccessEvent &E : Events) {
    A.handleAccess(E);
    DetectorEvent D;
    D.Location = E.Location;
    D.Thread = E.Thread;
    D.Locks = B.interner().intern(E.Locks);
    D.Access = E.Access;
    D.Site = E.Site;
    B.handleEvent(D);
  }
  EXPECT_EQ(keysOf(ViaAccess), keysOf(ViaEvent));
  EXPECT_EQ(A.stats().RacesReported, B.stats().RacesReported);
  EXPECT_EQ(A.stats().TrieNodes, B.stats().TrieNodes);
}

} // namespace
