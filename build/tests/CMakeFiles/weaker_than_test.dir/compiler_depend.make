# Empty compiler generated dependencies file for weaker_than_test.
# This may be replaced when dependencies are built.
