file(REMOVE_RECURSE
  "CMakeFiles/weaker_than_test.dir/weaker_than_test.cpp.o"
  "CMakeFiles/weaker_than_test.dir/weaker_than_test.cpp.o.d"
  "weaker_than_test"
  "weaker_than_test.pdb"
  "weaker_than_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weaker_than_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
