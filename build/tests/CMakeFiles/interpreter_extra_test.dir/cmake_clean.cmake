file(REMOVE_RECURSE
  "CMakeFiles/interpreter_extra_test.dir/interpreter_extra_test.cpp.o"
  "CMakeFiles/interpreter_extra_test.dir/interpreter_extra_test.cpp.o.d"
  "interpreter_extra_test"
  "interpreter_extra_test.pdb"
  "interpreter_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpreter_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
