file(REMOVE_RECURSE
  "CMakeFiles/race_runtime_test.dir/race_runtime_test.cpp.o"
  "CMakeFiles/race_runtime_test.dir/race_runtime_test.cpp.o.d"
  "race_runtime_test"
  "race_runtime_test.pdb"
  "race_runtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
