# Empty dependencies file for race_runtime_test.
# This may be replaced when dependencies are built.
