# Empty dependencies file for lock_order_test.
# This may be replaced when dependencies are built.
