file(REMOVE_RECURSE
  "CMakeFiles/lock_order_test.dir/lock_order_test.cpp.o"
  "CMakeFiles/lock_order_test.dir/lock_order_test.cpp.o.d"
  "lock_order_test"
  "lock_order_test.pdb"
  "lock_order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
