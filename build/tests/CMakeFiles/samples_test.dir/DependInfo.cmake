
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/samples_test.cpp" "tests/CMakeFiles/samples_test.dir/samples_test.cpp.o" "gcc" "tests/CMakeFiles/samples_test.dir/samples_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/detect/CMakeFiles/herd_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/herd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/herd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/herd_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/herd/CMakeFiles/herd_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/herd_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/herd_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
