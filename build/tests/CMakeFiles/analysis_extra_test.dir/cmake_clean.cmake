file(REMOVE_RECURSE
  "CMakeFiles/analysis_extra_test.dir/analysis_extra_test.cpp.o"
  "CMakeFiles/analysis_extra_test.dir/analysis_extra_test.cpp.o.d"
  "analysis_extra_test"
  "analysis_extra_test.pdb"
  "analysis_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
