file(REMOVE_RECURSE
  "CMakeFiles/herd.dir/herd.cpp.o"
  "CMakeFiles/herd.dir/herd.cpp.o.d"
  "herd"
  "herd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
