# Empty dependencies file for herd.
# This may be replaced when dependencies are built.
