
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/AccessCache.cpp" "src/detect/CMakeFiles/herd_detect.dir/AccessCache.cpp.o" "gcc" "src/detect/CMakeFiles/herd_detect.dir/AccessCache.cpp.o.d"
  "/root/repo/src/detect/AccessTrie.cpp" "src/detect/CMakeFiles/herd_detect.dir/AccessTrie.cpp.o" "gcc" "src/detect/CMakeFiles/herd_detect.dir/AccessTrie.cpp.o.d"
  "/root/repo/src/detect/DeadlockDetector.cpp" "src/detect/CMakeFiles/herd_detect.dir/DeadlockDetector.cpp.o" "gcc" "src/detect/CMakeFiles/herd_detect.dir/DeadlockDetector.cpp.o.d"
  "/root/repo/src/detect/Detector.cpp" "src/detect/CMakeFiles/herd_detect.dir/Detector.cpp.o" "gcc" "src/detect/CMakeFiles/herd_detect.dir/Detector.cpp.o.d"
  "/root/repo/src/detect/EventLog.cpp" "src/detect/CMakeFiles/herd_detect.dir/EventLog.cpp.o" "gcc" "src/detect/CMakeFiles/herd_detect.dir/EventLog.cpp.o.d"
  "/root/repo/src/detect/RaceRuntime.cpp" "src/detect/CMakeFiles/herd_detect.dir/RaceRuntime.cpp.o" "gcc" "src/detect/CMakeFiles/herd_detect.dir/RaceRuntime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/herd_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/herd_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
