file(REMOVE_RECURSE
  "CMakeFiles/herd_detect.dir/AccessCache.cpp.o"
  "CMakeFiles/herd_detect.dir/AccessCache.cpp.o.d"
  "CMakeFiles/herd_detect.dir/AccessTrie.cpp.o"
  "CMakeFiles/herd_detect.dir/AccessTrie.cpp.o.d"
  "CMakeFiles/herd_detect.dir/DeadlockDetector.cpp.o"
  "CMakeFiles/herd_detect.dir/DeadlockDetector.cpp.o.d"
  "CMakeFiles/herd_detect.dir/Detector.cpp.o"
  "CMakeFiles/herd_detect.dir/Detector.cpp.o.d"
  "CMakeFiles/herd_detect.dir/EventLog.cpp.o"
  "CMakeFiles/herd_detect.dir/EventLog.cpp.o.d"
  "CMakeFiles/herd_detect.dir/RaceRuntime.cpp.o"
  "CMakeFiles/herd_detect.dir/RaceRuntime.cpp.o.d"
  "libherd_detect.a"
  "libherd_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
