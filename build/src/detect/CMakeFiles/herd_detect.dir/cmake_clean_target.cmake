file(REMOVE_RECURSE
  "libherd_detect.a"
)
