# Empty compiler generated dependencies file for herd_detect.
# This may be replaced when dependencies are built.
