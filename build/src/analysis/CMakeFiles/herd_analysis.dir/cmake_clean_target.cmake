file(REMOVE_RECURSE
  "libherd_analysis.a"
)
