# Empty compiler generated dependencies file for herd_analysis.
# This may be replaced when dependencies are built.
