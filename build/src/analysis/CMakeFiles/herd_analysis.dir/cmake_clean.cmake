file(REMOVE_RECURSE
  "CMakeFiles/herd_analysis.dir/CFG.cpp.o"
  "CMakeFiles/herd_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/Escape.cpp.o"
  "CMakeFiles/herd_analysis.dir/Escape.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/LockOrder.cpp.o"
  "CMakeFiles/herd_analysis.dir/LockOrder.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/PointsTo.cpp.o"
  "CMakeFiles/herd_analysis.dir/PointsTo.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/SingleInstance.cpp.o"
  "CMakeFiles/herd_analysis.dir/SingleInstance.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/StaticRace.cpp.o"
  "CMakeFiles/herd_analysis.dir/StaticRace.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/SyncAnalysis.cpp.o"
  "CMakeFiles/herd_analysis.dir/SyncAnalysis.cpp.o.d"
  "CMakeFiles/herd_analysis.dir/ThreadAnalysis.cpp.o"
  "CMakeFiles/herd_analysis.dir/ThreadAnalysis.cpp.o.d"
  "libherd_analysis.a"
  "libherd_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
