
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/Escape.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/Escape.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/Escape.cpp.o.d"
  "/root/repo/src/analysis/LockOrder.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/LockOrder.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/LockOrder.cpp.o.d"
  "/root/repo/src/analysis/PointsTo.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/PointsTo.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/PointsTo.cpp.o.d"
  "/root/repo/src/analysis/SingleInstance.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/SingleInstance.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/SingleInstance.cpp.o.d"
  "/root/repo/src/analysis/StaticRace.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/StaticRace.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/StaticRace.cpp.o.d"
  "/root/repo/src/analysis/SyncAnalysis.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/SyncAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/SyncAnalysis.cpp.o.d"
  "/root/repo/src/analysis/ThreadAnalysis.cpp" "src/analysis/CMakeFiles/herd_analysis.dir/ThreadAnalysis.cpp.o" "gcc" "src/analysis/CMakeFiles/herd_analysis.dir/ThreadAnalysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/herd_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
