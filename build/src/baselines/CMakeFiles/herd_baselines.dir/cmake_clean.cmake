file(REMOVE_RECURSE
  "CMakeFiles/herd_baselines.dir/EraserDetector.cpp.o"
  "CMakeFiles/herd_baselines.dir/EraserDetector.cpp.o.d"
  "CMakeFiles/herd_baselines.dir/NaiveDetector.cpp.o"
  "CMakeFiles/herd_baselines.dir/NaiveDetector.cpp.o.d"
  "CMakeFiles/herd_baselines.dir/VectorClockDetector.cpp.o"
  "CMakeFiles/herd_baselines.dir/VectorClockDetector.cpp.o.d"
  "libherd_baselines.a"
  "libherd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
