file(REMOVE_RECURSE
  "libherd_runtime.a"
)
