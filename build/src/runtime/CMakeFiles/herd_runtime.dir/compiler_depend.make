# Empty compiler generated dependencies file for herd_runtime.
# This may be replaced when dependencies are built.
