file(REMOVE_RECURSE
  "CMakeFiles/herd_runtime.dir/Interpreter.cpp.o"
  "CMakeFiles/herd_runtime.dir/Interpreter.cpp.o.d"
  "libherd_runtime.a"
  "libherd_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
