# Empty compiler generated dependencies file for herd_instr.
# This may be replaced when dependencies are built.
