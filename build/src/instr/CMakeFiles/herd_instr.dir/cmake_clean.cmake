file(REMOVE_RECURSE
  "CMakeFiles/herd_instr.dir/Instrumenter.cpp.o"
  "CMakeFiles/herd_instr.dir/Instrumenter.cpp.o.d"
  "CMakeFiles/herd_instr.dir/LoopPeeling.cpp.o"
  "CMakeFiles/herd_instr.dir/LoopPeeling.cpp.o.d"
  "CMakeFiles/herd_instr.dir/RedundancyElim.cpp.o"
  "CMakeFiles/herd_instr.dir/RedundancyElim.cpp.o.d"
  "CMakeFiles/herd_instr.dir/TraceInsertion.cpp.o"
  "CMakeFiles/herd_instr.dir/TraceInsertion.cpp.o.d"
  "libherd_instr.a"
  "libherd_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
