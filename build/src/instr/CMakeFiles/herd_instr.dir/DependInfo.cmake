
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instr/Instrumenter.cpp" "src/instr/CMakeFiles/herd_instr.dir/Instrumenter.cpp.o" "gcc" "src/instr/CMakeFiles/herd_instr.dir/Instrumenter.cpp.o.d"
  "/root/repo/src/instr/LoopPeeling.cpp" "src/instr/CMakeFiles/herd_instr.dir/LoopPeeling.cpp.o" "gcc" "src/instr/CMakeFiles/herd_instr.dir/LoopPeeling.cpp.o.d"
  "/root/repo/src/instr/RedundancyElim.cpp" "src/instr/CMakeFiles/herd_instr.dir/RedundancyElim.cpp.o" "gcc" "src/instr/CMakeFiles/herd_instr.dir/RedundancyElim.cpp.o.d"
  "/root/repo/src/instr/TraceInsertion.cpp" "src/instr/CMakeFiles/herd_instr.dir/TraceInsertion.cpp.o" "gcc" "src/instr/CMakeFiles/herd_instr.dir/TraceInsertion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/herd_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/herd_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
