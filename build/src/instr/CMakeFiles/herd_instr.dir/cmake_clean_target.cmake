file(REMOVE_RECURSE
  "libherd_instr.a"
)
