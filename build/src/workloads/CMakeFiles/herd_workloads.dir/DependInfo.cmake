
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Elevator.cpp" "src/workloads/CMakeFiles/herd_workloads.dir/Elevator.cpp.o" "gcc" "src/workloads/CMakeFiles/herd_workloads.dir/Elevator.cpp.o.d"
  "/root/repo/src/workloads/Hedc.cpp" "src/workloads/CMakeFiles/herd_workloads.dir/Hedc.cpp.o" "gcc" "src/workloads/CMakeFiles/herd_workloads.dir/Hedc.cpp.o.d"
  "/root/repo/src/workloads/Mtrt.cpp" "src/workloads/CMakeFiles/herd_workloads.dir/Mtrt.cpp.o" "gcc" "src/workloads/CMakeFiles/herd_workloads.dir/Mtrt.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/herd_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/herd_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Sor2.cpp" "src/workloads/CMakeFiles/herd_workloads.dir/Sor2.cpp.o" "gcc" "src/workloads/CMakeFiles/herd_workloads.dir/Sor2.cpp.o.d"
  "/root/repo/src/workloads/Tsp.cpp" "src/workloads/CMakeFiles/herd_workloads.dir/Tsp.cpp.o" "gcc" "src/workloads/CMakeFiles/herd_workloads.dir/Tsp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/herd_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
