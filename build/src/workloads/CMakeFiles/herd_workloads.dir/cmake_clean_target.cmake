file(REMOVE_RECURSE
  "libherd_workloads.a"
)
