file(REMOVE_RECURSE
  "CMakeFiles/herd_workloads.dir/Elevator.cpp.o"
  "CMakeFiles/herd_workloads.dir/Elevator.cpp.o.d"
  "CMakeFiles/herd_workloads.dir/Hedc.cpp.o"
  "CMakeFiles/herd_workloads.dir/Hedc.cpp.o.d"
  "CMakeFiles/herd_workloads.dir/Mtrt.cpp.o"
  "CMakeFiles/herd_workloads.dir/Mtrt.cpp.o.d"
  "CMakeFiles/herd_workloads.dir/Registry.cpp.o"
  "CMakeFiles/herd_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/herd_workloads.dir/Sor2.cpp.o"
  "CMakeFiles/herd_workloads.dir/Sor2.cpp.o.d"
  "CMakeFiles/herd_workloads.dir/Tsp.cpp.o"
  "CMakeFiles/herd_workloads.dir/Tsp.cpp.o.d"
  "libherd_workloads.a"
  "libherd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
