# Empty dependencies file for herd_workloads.
# This may be replaced when dependencies are built.
