file(REMOVE_RECURSE
  "CMakeFiles/herd_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/herd_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/herd_ir.dir/Printer.cpp.o"
  "CMakeFiles/herd_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/herd_ir.dir/Program.cpp.o"
  "CMakeFiles/herd_ir.dir/Program.cpp.o.d"
  "CMakeFiles/herd_ir.dir/Verifier.cpp.o"
  "CMakeFiles/herd_ir.dir/Verifier.cpp.o.d"
  "libherd_ir.a"
  "libherd_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
