file(REMOVE_RECURSE
  "libherd_ir.a"
)
