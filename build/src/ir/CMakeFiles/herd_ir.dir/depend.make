# Empty dependencies file for herd_ir.
# This may be replaced when dependencies are built.
