# Empty dependencies file for herd_pipeline.
# This may be replaced when dependencies are built.
