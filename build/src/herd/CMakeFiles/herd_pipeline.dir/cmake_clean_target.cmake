file(REMOVE_RECURSE
  "libherd_pipeline.a"
)
