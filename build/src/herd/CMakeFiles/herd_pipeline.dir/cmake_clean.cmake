file(REMOVE_RECURSE
  "CMakeFiles/herd_pipeline.dir/Pipeline.cpp.o"
  "CMakeFiles/herd_pipeline.dir/Pipeline.cpp.o.d"
  "libherd_pipeline.a"
  "libherd_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
