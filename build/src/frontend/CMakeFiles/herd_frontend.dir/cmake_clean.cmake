file(REMOVE_RECURSE
  "CMakeFiles/herd_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/herd_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/herd_frontend.dir/Lower.cpp.o"
  "CMakeFiles/herd_frontend.dir/Lower.cpp.o.d"
  "CMakeFiles/herd_frontend.dir/Parser.cpp.o"
  "CMakeFiles/herd_frontend.dir/Parser.cpp.o.d"
  "libherd_frontend.a"
  "libherd_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/herd_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
