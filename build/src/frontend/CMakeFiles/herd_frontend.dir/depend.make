# Empty dependencies file for herd_frontend.
# This may be replaced when dependencies are built.
