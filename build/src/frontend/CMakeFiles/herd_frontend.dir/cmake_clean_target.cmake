file(REMOVE_RECURSE
  "libherd_frontend.a"
)
