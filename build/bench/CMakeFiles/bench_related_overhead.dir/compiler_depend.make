# Empty compiler generated dependencies file for bench_related_overhead.
# This may be replaced when dependencies are built.
