file(REMOVE_RECURSE
  "CMakeFiles/bench_related_overhead.dir/bench_related_overhead.cpp.o"
  "CMakeFiles/bench_related_overhead.dir/bench_related_overhead.cpp.o.d"
  "bench_related_overhead"
  "bench_related_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
