file(REMOVE_RECURSE
  "CMakeFiles/bench_postmortem.dir/bench_postmortem.cpp.o"
  "CMakeFiles/bench_postmortem.dir/bench_postmortem.cpp.o.d"
  "bench_postmortem"
  "bench_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
