# Empty compiler generated dependencies file for bench_postmortem.
# This may be replaced when dependencies are built.
