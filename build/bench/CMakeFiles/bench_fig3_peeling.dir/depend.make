# Empty dependencies file for bench_fig3_peeling.
# This may be replaced when dependencies are built.
