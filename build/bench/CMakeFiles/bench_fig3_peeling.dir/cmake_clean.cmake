file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_peeling.dir/bench_fig3_peeling.cpp.o"
  "CMakeFiles/bench_fig3_peeling.dir/bench_fig3_peeling.cpp.o.d"
  "bench_fig3_peeling"
  "bench_fig3_peeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_peeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
