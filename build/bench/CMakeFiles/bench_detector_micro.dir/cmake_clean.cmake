file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_micro.dir/bench_detector_micro.cpp.o"
  "CMakeFiles/bench_detector_micro.dir/bench_detector_micro.cpp.o.d"
  "bench_detector_micro"
  "bench_detector_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
