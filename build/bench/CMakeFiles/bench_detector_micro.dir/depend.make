# Empty dependencies file for bench_detector_micro.
# This may be replaced when dependencies are built.
