# Empty dependencies file for bench_ablation_weaker.
# This may be replaced when dependencies are built.
