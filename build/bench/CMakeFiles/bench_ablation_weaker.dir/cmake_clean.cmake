file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_weaker.dir/bench_ablation_weaker.cpp.o"
  "CMakeFiles/bench_ablation_weaker.dir/bench_ablation_weaker.cpp.o.d"
  "bench_ablation_weaker"
  "bench_ablation_weaker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_weaker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
