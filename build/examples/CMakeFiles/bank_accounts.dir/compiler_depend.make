# Empty compiler generated dependencies file for bank_accounts.
# This may be replaced when dependencies are built.
