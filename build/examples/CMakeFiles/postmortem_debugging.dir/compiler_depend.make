# Empty compiler generated dependencies file for postmortem_debugging.
# This may be replaced when dependencies are built.
