file(REMOVE_RECURSE
  "CMakeFiles/postmortem_debugging.dir/postmortem_debugging.cpp.o"
  "CMakeFiles/postmortem_debugging.dir/postmortem_debugging.cpp.o.d"
  "postmortem_debugging"
  "postmortem_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postmortem_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
