file(REMOVE_RECURSE
  "CMakeFiles/minij_tour.dir/minij_tour.cpp.o"
  "CMakeFiles/minij_tour.dir/minij_tour.cpp.o.d"
  "minij_tour"
  "minij_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minij_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
