# Empty compiler generated dependencies file for minij_tour.
# This may be replaced when dependencies are built.
