//===- bench/bench_fig3_peeling.cpp - Figure 3 regeneration ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the effect behind Figure 3, the loop peeling example: a
/// loop whose body writes `a.f` (a PEI, so the instrumentation cannot be
/// hoisted) is instrumented with and without peeling.  With peeling, the
/// body trace is statically weaker-than-covered by the peeled first
/// iteration and removed, so the loop emits at most one event instead of
/// one per iteration.
///
/// The sweep over iteration counts shows the crossover: peeling's benefit
/// grows linearly with trip count while its (tiny) code-size cost is
/// constant.
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "ir/IRBuilder.h"

#include <cstdio>

using namespace herd;

namespace {

/// The Figure 3 loop: for (...) { PEI; a.f = ...; trace(a,f,L,W) }.
Program buildFig3(int64_t Iters) {
  Program P;
  IRBuilder B(P);
  ClassId A = B.makeClass("A");
  FieldId F = B.makeField(A, "f");
  ClassId Other = B.makeClass("Other");
  FieldId OF = B.makeField(Other, "g");
  ClassId Worker = B.makeClass("Worker");
  FieldId WShared = B.makeField(Worker, "shared");
  // A second thread shares the object so the accesses are in the static
  // race set (a single-threaded loop would be statically race-free).
  B.startMethod(Worker, "run", 1);
  {
    RegId Obj = B.emitGetField(B.thisReg(), WShared);
    B.emitPutField(Obj, F, B.emitConst(-1));
    B.emitReturn();
  }
  B.startMain();
  RegId Obj = B.emitNew(A);
  RegId W = B.emitNew(Worker);
  B.emitPutField(W, WShared, Obj);
  B.emitThreadStart(W);
  B.emitThreadJoin(W);
  RegId N = B.emitConst(Iters);
  B.site("S12");
  B.forLoop(0, N, 1, [&](RegId I) {
    B.emitPutField(Obj, F, I); // S11/S12: the PEI + the access
  });
  B.emitPrint(B.emitGetField(Obj, F));
  (void)OF;
  B.emitReturn();
  return P;
}

} // namespace

int main() {
  std::printf("Figure 3: loop peeling ablation (events emitted by the "
              "instrumented loop and wall time)\n\n");
  std::printf("%10s %16s %16s %14s %14s %10s\n", "trip-count",
              "events(peeled)", "events(no peel)", "time-peel(s)",
              "time-nopeel(s)", "speedup");

  for (int64_t Iters : {10, 100, 1000, 10000, 100000}) {
    Program P = buildFig3(Iters);
    ToolConfig Peel = ToolConfig::full();
    ToolConfig NoPeel = ToolConfig::noPeeling();
    PipelineResult RPeel = runPipeline(P, Peel);
    PipelineResult RNoPeel = runPipeline(P, NoPeel);
    if (!RPeel.Run.Ok || !RNoPeel.Run.Ok) {
      std::fprintf(stderr, "run failed\n");
      return 1;
    }
    std::printf("%10lld %16llu %16llu %14.5f %14.5f %9.2fx\n",
                (long long)Iters,
                (unsigned long long)RPeel.Stats.EventsSeen,
                (unsigned long long)RNoPeel.Stats.EventsSeen,
                RPeel.ExecSeconds, RNoPeel.ExecSeconds,
                RPeel.ExecSeconds > 0
                    ? RNoPeel.ExecSeconds / RPeel.ExecSeconds
                    : 0.0);
  }
  return 0;
}
