//===- bench/bench_table2_overhead.cpp - Table 2 regeneration -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2, "Runtime Performance": wall-clock time and
/// overhead over Base for the configurations Full / NoStatic /
/// NoDominators / NoPeeling / NoCache, on the three CPU-bound benchmarks
/// (the paper excludes the interactive elevator and hedc).
///
/// Absolute numbers differ from the paper (their substrate was Jalapeño on
/// a 450 MHz POWER3; ours is a deterministic interpreter), but the shape
/// to check against the paper is:
///   - Full has the lowest instrumented overhead everywhere;
///   - NoCache is catastrophic on tsp (paper: 3722%);
///   - NoDominators/NoPeeling hurt sor2 badly (paper: 316% / 226%);
///   - NoStatic hurts mtrt most (paper: out of memory).
///
/// Also prints the Section 8.2 space measurements: trie nodes and tracked
/// locations (the paper reports 7967 trie nodes / 6562 locations for tsp).
///
/// Following the paper's methodology, each configuration is run several
/// times and the best run is reported.
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace herd;

namespace {

struct ConfigRow {
  const char *Name;
  ToolConfig Config;
};

double bestOf(const Program &P, ToolConfig Config, int Repeats,
              PipelineResult &Out) {
  double Best = -1.0;
  for (int I = 0; I != Repeats; ++I) {
    PipelineResult R = runPipeline(P, Config);
    if (!R.Run.Ok) {
      std::fprintf(stderr, "run failed: %s\n", R.Run.Error.c_str());
      std::exit(1);
    }
    if (Best < 0 || R.ExecSeconds < Best) {
      Best = R.ExecSeconds;
      Out = std::move(R);
    }
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  // Scale up so Base runs are long enough to time reliably; override with
  // argv[1] for quicker smoke runs.
  uint32_t Scale = argc > 1 ? uint32_t(std::atoi(argv[1])) : 120;
  int Repeats = 5;

  std::vector<ConfigRow> Configs = {
      {"Base", ToolConfig::base()},
      {"Full", ToolConfig::full()},
      {"NoStatic", ToolConfig::noStatic()},
      {"NoDominators", ToolConfig::noDominators()},
      {"NoPeeling", ToolConfig::noPeeling()},
      {"NoCache", ToolConfig::noCache()},
  };

  std::printf("Table 2: runtime performance (scale=%u, best of %d runs)\n",
              Scale, Repeats);
  std::printf("(paper overheads: mtrt 20%%/OOM/21%%/21%%/26%%; tsp "
              "42%%/175%%/57%%/57%%/3722%%; sor2 13%%/13%%/316%%/226%%/37%%)"
              "\n\n");

  std::vector<Workload> All = buildAllWorkloads(Scale);
  for (Workload &W : All) {
    if (!W.CpuBound)
      continue; // the paper omits elevator/hedc from Table 2
    std::printf("%-6s %-14s %10s %9s %9s %12s %12s %10s %10s\n", "prog",
                "config", "time(s)", "overhead", "instr-ovh", "events",
                "detector-in", "trie-nodes", "locations");
    double BaseTime = 0;
    uint64_t BaseInstrs = 0;
    for (const ConfigRow &Row : Configs) {
      PipelineResult R;
      double Seconds = bestOf(W.P, Row.Config, Repeats, R);
      if (Row.Config.Instrument == false) {
        BaseTime = Seconds;
        BaseInstrs = R.Run.InstructionsExecuted;
      }
      double Overhead =
          BaseTime > 0 ? (Seconds - BaseTime) / BaseTime * 100.0 : 0.0;
      // Instruction overhead is deterministic (no timer noise) and shows
      // the pure instrumentation cost; wall time additionally includes
      // the cache/trie work that runs outside interpreted instructions.
      double InstrOverhead =
          BaseInstrs
              ? (double(R.Run.InstructionsExecuted) - double(BaseInstrs)) /
                    double(BaseInstrs) * 100.0
              : 0.0;
      std::printf(
          "%-6s %-14s %10.4f %8.0f%% %8.0f%% %12llu %12llu %10zu %10zu\n",
          W.Name.c_str(), Row.Name, Seconds, Overhead, InstrOverhead,
          (unsigned long long)R.Stats.EventsSeen,
          (unsigned long long)R.Stats.Detector.EventsIn,
          R.Stats.Detector.TrieNodes, R.Stats.Detector.LocationsTracked);
    }
    std::printf("\n");
  }
  return 0;
}
