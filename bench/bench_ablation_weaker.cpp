//===- bench/bench_ablation_weaker.cpp - Weaker-than ablation -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies how much each weaker-than-based mechanism contributes on the
/// benchmark replicas — the paper's Section 8.2 claim that "each
/// optimization is vital for some benchmark":
///
///   column 1: fraction of all dynamic accesses never traced at all
///             (static race set + static weaker-than + peeling);
///   column 2: fraction of emitted events absorbed by the per-thread
///             caches (guaranteed-redundant);
///   column 3: fraction of detector arrivals filtered by the ownership
///             model;
///   column 4: fraction filtered by the trie's dynamic weakness check;
///   column 5: events that survive everything (the ones that can race).
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace herd;

int main() {
  std::printf("Weaker-than ablation: where the access events die\n\n");
  std::printf("%-10s %12s %10s %10s %10s %10s %10s\n", "program",
              "raw-accesses", "untraced%", "cache%", "owned%", "weaker%",
              "survive");

  for (Workload &W : buildAllWorkloads()) {
    // Raw access count: run uninstrumented with TraceEveryAccess.
    struct Counter : RuntimeHooks {
      uint64_t Raw = 0;
      void onAccess(ThreadId, LocationKey, AccessKind, SiteId) override {
        ++Raw;
      }
    } Count;
    InterpOptions Opts;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(W.P, &Count, Opts);
    if (!Interp.run().Ok)
      return 1;

    PipelineResult R = runPipeline(W.P, ToolConfig::full());
    if (!R.Run.Ok)
      return 1;
    const RaceRuntimeStats &S = R.Stats;
    uint64_t Raw = Count.Raw;
    uint64_t Untraced = Raw > S.EventsSeen ? Raw - S.EventsSeen : 0;
    uint64_t Survive = S.Detector.EventsIn - S.Detector.OwnedFiltered -
                       S.Detector.WeakerFiltered;
    auto Pct = [&](uint64_t N) { return Raw ? 100.0 * double(N) / double(Raw) : 0.0; };
    std::printf("%-10s %12llu %9.1f%% %9.1f%% %9.1f%% %9.1f%% %10llu\n",
                W.Name.c_str(), (unsigned long long)Raw, Pct(Untraced),
                Pct(S.CacheHits), Pct(S.Detector.OwnedFiltered),
                Pct(S.Detector.WeakerFiltered),
                (unsigned long long)Survive);
  }

  std::printf("\n(The 'survive' column is the detector's real work: trie\n"
              "updates and race checks.  Everything else was proven\n"
              "redundant by a weaker-than argument at some stage.)\n");
  return 0;
}
