//===- bench/bench_trace_replay.cpp - Trace file throughput ---------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the streaming trace subsystem (docs/REPLAY.md) on the
/// benchmark replicas: record-to-file write throughput and on-disk growth
/// (the Section 9 "trace structure can grow prohibitively large" axis,
/// now with the exact 40-byte record encoding), then replay-from-file
/// detection throughput through the serial runtime and the sharded
/// runtime at several shard counts, cross-checking that every path
/// reports the same racy locations.
///
//===----------------------------------------------------------------------===//

#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "detect/TraceFile.h"
#include "runtime/Interpreter.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

using namespace herd;

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

} // namespace

int main() {
  std::printf("Trace record/replay throughput (docs/REPLAY.md)\n\n");
  std::printf("%-10s %10s %12s %10s %12s %12s\n", "program", "events",
              "file-bytes", "B/event", "write-ev/s", "write(s)");

  const uint32_t ReplayShardCounts[] = {1, 2, 4};
  struct Recorded {
    std::string Name;
    std::string Path;
    uint64_t Records;
  };
  std::vector<Recorded> Traces;

  for (Workload &W : buildAllWorkloads(4)) {
    std::string Path = "/tmp/herd_bench_" + W.Name + ".trace";
    TraceWriter Writer;
    if (TraceResult TR = Writer.open(Path); !TR.Ok) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), TR.Error.c_str());
      return 1;
    }
    InterpOptions Opts;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(W.P, &Writer, Opts);
    auto T0 = std::chrono::steady_clock::now();
    InterpResult R = Interp.run();
    double WriteSeconds = secondsSince(T0);
    if (TraceResult TR = Writer.close(); !R.Ok || !TR.Ok) {
      std::fprintf(stderr, "%s failed: %s%s\n", W.Name.c_str(),
                   R.Error.c_str(), TR.Error.c_str());
      return 1;
    }

    uint64_t Records = Writer.recordsWritten();
    std::printf("%-10s %10llu %12llu %10.1f %12.0f %12.4f\n", W.Name.c_str(),
                (unsigned long long)Records,
                (unsigned long long)Writer.bytesWritten(),
                Records ? double(Writer.bytesWritten()) / double(Records)
                        : 0.0,
                WriteSeconds > 0 ? double(Records) / WriteSeconds : 0.0,
                WriteSeconds);
    Traces.push_back({W.Name, Path, Records});
  }

  std::printf("\nReplay detection throughput (events/s) and agreement\n\n");
  std::printf("%-10s %12s", "program", "serial");
  for (uint32_t Shards : ReplayShardCounts)
    std::printf("   shards=%-4u", Shards);
  std::printf("%12s\n", "same-races");

  for (const Recorded &T : Traces) {
    std::printf("%-10s", T.Name.c_str());

    RaceRuntime Serial;
    {
      TraceReader Reader;
      if (TraceResult TR = Reader.open(T.Path); !TR.Ok) {
        std::fprintf(stderr, "%s: %s\n", T.Name.c_str(), TR.Error.c_str());
        return 1;
      }
      auto T0 = std::chrono::steady_clock::now();
      if (TraceResult TR = Reader.replayInto(Serial); !TR.Ok) {
        std::fprintf(stderr, "%s: %s\n", T.Name.c_str(), TR.Error.c_str());
        return 1;
      }
      Serial.onRunEnd();
      double S = secondsSince(T0);
      std::printf(" %12.0f", S > 0 ? double(T.Records) / S : 0.0);
    }

    bool AllAgree = true;
    for (uint32_t Shards : ReplayShardCounts) {
      ShardedRuntimeOptions SOpts;
      SOpts.NumShards = Shards;
      ShardedRuntime Sharded(SOpts);
      TraceReader Reader;
      if (TraceResult TR = Reader.open(T.Path); !TR.Ok) {
        std::fprintf(stderr, "%s: %s\n", T.Name.c_str(), TR.Error.c_str());
        return 1;
      }
      auto T0 = std::chrono::steady_clock::now();
      if (TraceResult TR = Reader.replayInto(Sharded); !TR.Ok) {
        std::fprintf(stderr, "%s: %s\n", T.Name.c_str(), TR.Error.c_str());
        return 1;
      }
      Sharded.onRunEnd();
      double S = secondsSince(T0);
      std::printf("   %-11.0f", S > 0 ? double(T.Records) / S : 0.0);
      AllAgree = AllAgree && Sharded.reporter().reportedLocations() ==
                                 Serial.reporter().reportedLocations();
    }
    std::printf("%12s\n", AllAgree ? "yes" : "NO!");
    std::remove(T.Path.c_str());
  }

  std::printf("\nEvery byte of a trace costs 40B/event on disk but nothing\n"
              "in RAM: the writer streams, and replay re-detects a recorded\n"
              "run under any runtime configuration without re-execution.\n");
  return 0;
}
