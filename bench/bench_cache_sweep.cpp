//===- bench/bench_cache_sweep.cpp - Section 4.3 cache-size sweep ---------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's Section 4.3 experiment: the per-thread access
/// cache's hit rate as a function of its size, per benchmark replica.  The
/// paper sweeps the cache size and settles on 256 entries as the point
/// where the curve flattens; this harness runs the full pipeline (static
/// analysis + instrumentation + detection, the configuration the paper
/// measures) at each power-of-two size and reports hit rate, evictions and
/// execution time.
///
/// `--smoke` shrinks the workloads and the sweep for CI; `--out=PATH`
/// writes a JSON report (schema herd-bench-cache-sweep-v1) that the
/// smoke-bench CI job archives next to the hot-path report.
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace herd;

namespace {

struct SweepPoint {
  uint32_t CacheEntries = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  double HitRate = 0;
  double ExecSeconds = 0;
};

struct SweepReport {
  std::string Name;
  uint64_t EventsSeen = 0;
  std::vector<SweepPoint> Points;
};

void writeJson(std::FILE *F, const std::vector<SweepReport> &Reports,
               bool Smoke) {
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"schema\": \"herd-bench-cache-sweep-v1\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"workloads\": [\n");
  for (size_t I = 0; I != Reports.size(); ++I) {
    const SweepReport &R = Reports[I];
    std::fprintf(F, "    {\n");
    std::fprintf(F, "      \"name\": \"%s\",\n", R.Name.c_str());
    std::fprintf(F, "      \"events_seen\": %llu,\n",
                 (unsigned long long)R.EventsSeen);
    std::fprintf(F, "      \"sweep\": [\n");
    for (size_t J = 0; J != R.Points.size(); ++J) {
      const SweepPoint &P = R.Points[J];
      std::fprintf(F,
                   "        {\"cache_entries\": %u, \"hits\": %llu, "
                   "\"misses\": %llu, \"evictions\": %llu, "
                   "\"hit_rate\": %.4f, \"exec_seconds\": %.4f}%s\n",
                   P.CacheEntries, (unsigned long long)P.Hits,
                   (unsigned long long)P.Misses,
                   (unsigned long long)P.Evictions, P.HitRate,
                   P.ExecSeconds, J + 1 != R.Points.size() ? "," : "");
    }
    std::fprintf(F, "      ]\n");
    std::fprintf(F, "    }%s\n", I + 1 != Reports.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n");
  std::fprintf(F, "}\n");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  std::string OutPath;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out=PATH]\n", argv[0]);
      return 2;
    }
  }

  const uint32_t FullSizes[] = {8, 16, 32, 64, 128, 256, 512, 1024};
  const uint32_t SmokeSizes[] = {8, 64, 256};
  const uint32_t *Sizes = Smoke ? SmokeSizes : FullSizes;
  size_t NumSizes = Smoke ? 3 : 8;

  std::printf("Access-cache size sweep (paper Section 4.3)%s\n\n",
              Smoke ? " [smoke]" : "");
  std::printf("%-9s %8s %12s %12s %12s %9s %9s\n", "workload", "entries",
              "hits", "misses", "evictions", "hit-rate", "seconds");

  std::vector<SweepReport> Reports;
  for (Workload &W : buildAllWorkloads(Smoke ? 1 : 4)) {
    SweepReport Report;
    Report.Name = W.Name;
    for (size_t SI = 0; SI != NumSizes; ++SI) {
      ToolConfig Config = ToolConfig::full();
      Config.CacheEntries = Sizes[SI];
      PipelineResult R = runPipeline(W.P, Config);
      if (!R.Run.Ok) {
        std::fprintf(stderr, "%s (cache=%u): %s\n", W.Name.c_str(),
                     Sizes[SI], R.Run.Error.c_str());
        return 1;
      }
      SweepPoint P;
      P.CacheEntries = Sizes[SI];
      P.Hits = R.Stats.CacheHits;
      P.Misses = R.Stats.CacheMisses;
      P.Evictions = R.Stats.CacheEvictions;
      uint64_t Total = P.Hits + P.Misses;
      P.HitRate = Total ? double(P.Hits) / double(Total) : 0.0;
      P.ExecSeconds = R.ExecSeconds;
      Report.EventsSeen = R.Stats.EventsSeen;
      std::printf("%-9s %8u %12llu %12llu %12llu %8.2f%% %9.4f\n",
                  W.Name.c_str(), P.CacheEntries,
                  (unsigned long long)P.Hits, (unsigned long long)P.Misses,
                  (unsigned long long)P.Evictions, 100.0 * P.HitRate,
                  P.ExecSeconds);
      Report.Points.push_back(P);
    }
    Reports.push_back(std::move(Report));
  }

  if (!OutPath.empty()) {
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", OutPath.c_str());
      return 1;
    }
    writeJson(F, Reports, Smoke);
    std::fclose(F);
    std::printf("\nwrote %s\n", OutPath.c_str());
  }
  return 0;
}
