//===- bench/bench_table3_accuracy.cpp - Table 3 regeneration -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3, "Number of Objects With Dataraces Reported":
/// distinct objects reported by Full / FieldsMerged / NoOwnership on all
/// five benchmarks, extended with the related-work baselines implemented
/// from scratch (Eraser and object-granularity detection run on the full
/// event stream), the happens-before pair (the vector-clock baseline and
/// the epoch-optimized backend, which must agree exactly — see
/// docs/DETECTORS.md), and the Section 8.3 join-idiom comparison.
///
/// Paper values: mtrt 2/2/12; tsp 5/20/241; sor2 4/4/1009; elevator
/// 0/0/16; hedc 5/10/29.  Shape to check: Full is small and corresponds
/// to the engineered ground truth; FieldsMerged adds spurious objects on
/// tsp/hedc; NoOwnership floods everywhere; Eraser and object detection
/// report supersets.
///
//===----------------------------------------------------------------------===//

#include "baselines/EpochDetector.h"
#include "baselines/EraserDetector.h"
#include "baselines/VectorClockDetector.h"
#include "herd/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <set>

using namespace herd;

namespace {

size_t eraserObjects(const Program &P, bool ObjectGranularity) {
  EraserDetector Eraser(ObjectGranularity);
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Eraser, Opts);
  InterpResult R = Interp.run();
  if (!R.Ok) {
    std::fprintf(stderr, "eraser run failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return Eraser.countDistinctObjects();
}

size_t distinctObjects(const std::set<LocationKey> &Reported) {
  std::set<ObjectId> Objects;
  for (LocationKey Loc : Reported)
    Objects.insert(Loc.object());
  return Objects.size();
}

/// Runs the full event stream through a happens-before hook
/// implementation (VectorClockDetector or EpochDetector) and counts the
/// distinct objects among its racy locations.
size_t hbObjects(const Program &P, RuntimeHooks &Hooks,
                 const std::set<LocationKey> &Reported) {
  InterpOptions Opts;
  Opts.TraceEveryAccess = true;
  Interpreter Interp(P, &Hooks, Opts);
  InterpResult R = Interp.run();
  if (!R.Ok) {
    std::fprintf(stderr, "happens-before run failed: %s\n", R.Error.c_str());
    std::exit(1);
  }
  return distinctObjects(Reported);
}

size_t objectsOf(const Program &P, ToolConfig Config) {
  PipelineResult R = runPipeline(P, Config);
  if (!R.Run.Ok) {
    std::fprintf(stderr, "pipeline run failed: %s\n", R.Run.Error.c_str());
    std::exit(1);
  }
  return R.Reports.countDistinctObjects();
}

} // namespace

int main() {
  std::printf("Table 3: number of objects with dataraces reported\n");
  std::printf("(paper: mtrt 2/2/12; tsp 5/20/241; sor2 4/4/1009;"
              " elevator 0/0/16; hedc 5/10/29)\n\n");
  std::printf("%-10s %6s %14s %13s | %8s %10s | %7s %6s\n", "program",
              "Full", "FieldsMerged", "NoOwnership", "Eraser", "ObjGranul",
              "VClock", "Epoch");

  bool HbAgree = true;
  for (Workload &W : buildAllWorkloads()) {
    size_t Full = objectsOf(W.P, ToolConfig::full());
    size_t Merged = objectsOf(W.P, ToolConfig::fieldsMerged());
    size_t NoOwn = objectsOf(W.P, ToolConfig::noOwnership());
    size_t Eraser = eraserObjects(W.P, /*ObjectGranularity=*/false);
    size_t ObjGran = eraserObjects(W.P, /*ObjectGranularity=*/true);
    VectorClockDetector Vc;
    size_t VClock = hbObjects(W.P, Vc, Vc.reportedLocations());
    EpochDetector Ep;
    size_t Epoch = hbObjects(W.P, Ep, Ep.reportedLocations());
    HbAgree = HbAgree && Vc.reportedLocations() == Ep.reportedLocations();
    std::printf("%-10s %6zu %14zu %13zu | %8zu %10zu | %7zu %6zu\n",
                W.Name.c_str(), Full, Merged, NoOwn, Eraser, ObjGran, VClock,
                Epoch);
  }

  std::printf("\nHappens-before columns: one interpreter run per detector,\n"
              "so each sees one concrete schedule and both see the same\n"
              "deterministic one; the epoch backend must reproduce the\n"
              "vector-clock racy-location set exactly (docs/DETECTORS.md) "
              "— %s.\n",
              HbAgree ? "they agree" : "THEY DIVERGE");

  std::printf("\nSection 8.3 join idiom on mtrt: the parent reads the I/O\n"
              "statistics lock-free after join(); our dummy join locks make\n"
              "the three locksets mutually intersecting (no report), while\n"
              "Eraser's single-common-lock rule reports the object — see\n"
              "the Eraser column exceeding Full on mtrt above.\n");
  return HbAgree ? 0 : 1;
}
