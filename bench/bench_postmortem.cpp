//===- bench/bench_postmortem.cpp - Post-mortem mode measurements ---------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quantifies the on-the-fly vs post-mortem trade-off the paper discusses
/// (Sections 1 and 9): post-mortem detection moves work off-line but "the
/// size of the trace structure can grow prohibitively large".  For each
/// benchmark replica this harness reports the full event-log size, the
/// (much smaller) footprint the online detector kept instead, and the
/// offline replay-detection time.
///
//===----------------------------------------------------------------------===//

#include "detect/EventLog.h"
#include "detect/RaceRuntime.h"
#include "runtime/Interpreter.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>

using namespace herd;

int main() {
  std::printf("Post-mortem mode: log size vs online detector footprint\n\n");
  std::printf("%-10s %10s %12s %14s %14s %12s\n", "program", "events",
              "log-bytes", "online-state*", "offline(s)", "same-races");

  for (Workload &W : buildAllWorkloads(4)) {
    // One run, observed by both the online detector and the recorder.
    RaceRuntime Online;
    EventLog Log;
    FanoutHooks Fanout{&Online, &Log};
    InterpOptions Opts;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(W.P, &Fanout, Opts);
    InterpResult R = Interp.run();
    if (!R.Ok) {
      std::fprintf(stderr, "%s failed: %s\n", W.Name.c_str(),
                   R.Error.c_str());
      return 1;
    }

    // Offline: replay the log into a fresh detector and time it.
    RaceRuntime Offline;
    auto T0 = std::chrono::steady_clock::now();
    Log.replayInto(Offline);
    double OfflineSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();

    // The online detector's retained state: trie nodes (~3 words each)
    // plus location-table entries; dwarfed by the full log.
    RaceRuntimeStats Stats = Online.stats();
    size_t OnlineState = Stats.Detector.TrieNodes * 24 +
                         Stats.Detector.LocationsTracked * 32;

    bool Same = Online.reporter().reportedLocations() ==
                Offline.reporter().reportedLocations();
    std::printf("%-10s %10zu %12zu %14zu %14.5f %12s\n", W.Name.c_str(),
                Log.size(), Log.serialize().size(), OnlineState,
                OfflineSeconds, Same ? "yes" : "NO!");
  }

  std::printf("\n(*) approximate bytes of detector state retained online;\n"
              "the log grows linearly with execution length while the\n"
              "weaker-than filtering keeps the online state near-constant\n"
              "— the paper's argument for on-the-fly detection.\n");
  return 0;
}
