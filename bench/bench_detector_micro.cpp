//===- bench/bench_detector_micro.cpp - Detector microbenchmarks ----------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the detector's hot paths, the
/// quantities behind the Section 4/8.2 engineering claims:
///   - the cache-hit path ("ten PowerPC instructions" in the paper);
///   - the trie weakness check that filters the vast majority of events;
///   - full trie processing (check + update + prune);
///   - the exact O(N²) oracle, for contrast with the trie's incremental
///     cost;
///   - the epoch backend's O(1) same-epoch path against the vector-clock
///     baseline's O(T) comparison at increasing thread counts
///     (docs/DETECTORS.md).
///
//===----------------------------------------------------------------------===//

#include "baselines/EpochDetector.h"
#include "baselines/NaiveDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/AccessCache.h"
#include "detect/AccessTrie.h"
#include "detect/Detector.h"
#include "detect/ShardedRuntime.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace herd;

namespace {

LocationKey keyOf(uint32_t Obj, uint32_t Field = 0) {
  return LocationKey::forField(ObjectId(Obj), FieldId(Field));
}

void BM_CacheHit(benchmark::State &State) {
  AccessCache Cache;
  Cache.insert(keyOf(1), LockId::invalid());
  for (auto _ : State)
    benchmark::DoNotOptimize(Cache.lookup(keyOf(1)));
}
BENCHMARK(BM_CacheHit);

void BM_CacheMissAndInsert(benchmark::State &State) {
  AccessCache Cache;
  uint32_t Obj = 0;
  for (auto _ : State) {
    LocationKey Key = keyOf(Obj++ & 0xFFFF);
    if (!Cache.lookup(Key))
      Cache.insert(Key, LockId::invalid());
  }
}
BENCHMARK(BM_CacheMissAndInsert);

void BM_CacheLockRelease(benchmark::State &State) {
  for (auto _ : State) {
    State.PauseTiming();
    AccessCache Cache;
    for (uint32_t I = 0; I != 64; ++I)
      Cache.insert(keyOf(I * 97), LockId(5));
    State.ResumeTiming();
    Cache.evictLock(LockId(5));
  }
}
BENCHMARK(BM_CacheLockRelease);

void BM_TrieWeaknessFilter(benchmark::State &State) {
  // The common case: the event is covered by a stored weaker access.
  AccessTrie Trie;
  LockSet NoLocks;
  Trie.process(ThreadId(1), NoLocks, AccessKind::Write);
  LockSet Held{LockId(3), LockId(7)};
  for (auto _ : State)
    benchmark::DoNotOptimize(
        Trie.process(ThreadId(1), Held, AccessKind::Read));
}
BENCHMARK(BM_TrieWeaknessFilter);

void BM_TrieProcessDeepLocksets(benchmark::State &State) {
  // Locksets of the given depth; alternating threads so the meet churns.
  size_t Depth = size_t(State.range(0));
  LockSet L1, L2;
  for (size_t I = 0; I != Depth; ++I) {
    L1.insert(LockId(uint32_t(I)));
    L2.insert(LockId(uint32_t(I + Depth)));
  }
  AccessTrie Trie;
  uint32_t Turn = 0;
  for (auto _ : State) {
    const LockSet &L = (Turn & 1) ? L2 : L1;
    benchmark::DoNotOptimize(
        Trie.process(ThreadId(1 + (Turn & 1)), L, AccessKind::Read));
    ++Turn;
  }
}
BENCHMARK(BM_TrieProcessDeepLocksets)->Arg(1)->Arg(4)->Arg(16);

void BM_DetectorStream(benchmark::State &State) {
  // A realistic mixed stream through the full detector (ownership + trie).
  size_t NumLocations = size_t(State.range(0));
  Rng R(42);
  for (auto _ : State) {
    State.PauseTiming();
    RaceReporter Reporter;
    Detector Det(Reporter, {});
    State.ResumeTiming();
    for (size_t I = 0; I != 4096; ++I) {
      AccessEvent E;
      E.Location = keyOf(uint32_t(R.nextBelow(NumLocations)));
      E.Thread = ThreadId(uint32_t(R.nextBelow(3)));
      if (R.nextChance(1, 2))
        E.Locks.insert(LockId(uint32_t(R.nextBelow(2))));
      E.Access = R.nextChance(1, 3) ? AccessKind::Write : AccessKind::Read;
      Det.handleAccess(E);
    }
  }
}
BENCHMARK(BM_DetectorStream)->Arg(16)->Arg(256);

void BM_NaiveOracleQuadratic(benchmark::State &State) {
  // The FullRace cost the paper's design avoids: O(N^2) in stored events.
  // The stream is race-free (a common lock everywhere), so the scan cannot
  // short-circuit on an early racing pair — the honest worst case.
  size_t NumEvents = size_t(State.range(0));
  Rng R(7);
  NaiveDetector::Options Opts;
  Opts.UseOwnership = false;
  Opts.ModelJoin = false;
  NaiveDetector Oracle(Opts);
  for (size_t I = 0; I != NumEvents; ++I) {
    AccessEvent E;
    E.Location = keyOf(0); // one hot location: the worst case
    E.Thread = ThreadId(uint32_t(R.nextBelow(3)));
    E.Locks.insert(LockId(9)); // common lock: no pair ever races
    E.Locks.insert(LockId(uint32_t(R.nextBelow(4))));
    E.Access = AccessKind::Write;
    Oracle.addEvent(E);
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(Oracle.racyLocations());
}
BENCHMARK(BM_NaiveOracleQuadratic)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TrieSameStreamLinear(benchmark::State &State) {
  // The same race-free stream through the trie: per-event cost is flat
  // because the weakness filter absorbs everything after the first few.
  size_t NumEvents = size_t(State.range(0));
  for (auto _ : State) {
    Rng R(7);
    AccessTrie Trie;
    for (size_t I = 0; I != NumEvents; ++I) {
      LockSet L;
      L.insert(LockId(9));
      L.insert(LockId(uint32_t(R.nextBelow(4))));
      benchmark::DoNotOptimize(
          Trie.process(ThreadId(uint32_t(R.nextBelow(3))), L,
                       AccessKind::Write));
    }
  }
}
BENCHMARK(BM_TrieSameStreamLinear)->Arg(256)->Arg(1024)->Arg(4096);

//===----------------------------------------------------------------------===
// Epoch backend vs vector-clock baseline (docs/DETECTORS.md).
//
// The same happens-before relation, two shadow-state representations.
// The same-epoch benchmark times the one-compare fast path that retires
// the overwhelmingly common repeated access; the lock-handoff pair times
// a fully ordered cross-thread write stream at increasing thread counts,
// where the vector-clock baseline pays O(T) per access and the epoch
// backend stays O(1).
//===----------------------------------------------------------------------===

void BM_EpochSameEpochAccess(benchmark::State &State) {
  // A thread re-accessing a location with no intervening sync: one
  // 64-bit compare per event, the detector's dominant path.
  EpochDetector Det;
  Det.onAccess(ThreadId(1), keyOf(1), AccessKind::Write, SiteId());
  for (auto _ : State)
    Det.onAccess(ThreadId(1), keyOf(1), AccessKind::Write, SiteId());
}
BENCHMARK(BM_EpochSameEpochAccess);

void BM_VectorClockSameLocationAccess(benchmark::State &State) {
  // The same stream through the vector-clock baseline: every event walks
  // the location's clock state even though nothing changed.
  VectorClockDetector Det;
  Det.onAccess(ThreadId(1), keyOf(1), AccessKind::Write, SiteId());
  for (auto _ : State)
    Det.onAccess(ThreadId(1), keyOf(1), AccessKind::Write, SiteId());
}
BENCHMARK(BM_VectorClockSameLocationAccess);

// One round of a fully ordered write relay: each thread takes the lock,
// writes the hot location, and hands the lock on.  No races; every write
// is ordered after the previous one through the lock's clock.
template <typename Detector>
void lockHandoffRound(Detector &Det, uint32_t NumThreads) {
  for (uint32_t T = 0; T != NumThreads; ++T) {
    Det.onMonitorEnter(ThreadId(T), LockId(1), /*Recursive=*/false);
    Det.onAccess(ThreadId(T), keyOf(1), AccessKind::Write, SiteId());
    Det.onMonitorExit(ThreadId(T), LockId(1), /*StillHeld=*/false);
  }
}

void BM_EpochLockHandoffWrites(benchmark::State &State) {
  uint32_t NumThreads = uint32_t(State.range(0));
  EpochDetector Det;
  lockHandoffRound(Det, NumThreads); // populate thread + lock state
  for (auto _ : State)
    lockHandoffRound(Det, NumThreads);
  State.SetItemsProcessed(int64_t(State.iterations()) * NumThreads);
}
BENCHMARK(BM_EpochLockHandoffWrites)->Arg(2)->Arg(8)->Arg(32);

void BM_VectorClockLockHandoffWrites(benchmark::State &State) {
  uint32_t NumThreads = uint32_t(State.range(0));
  VectorClockDetector Det;
  lockHandoffRound(Det, NumThreads);
  for (auto _ : State)
    lockHandoffRound(Det, NumThreads);
  State.SetItemsProcessed(int64_t(State.iterations()) * NumThreads);
}
BENCHMARK(BM_VectorClockLockHandoffWrites)->Arg(2)->Arg(8)->Arg(32);

void BM_EpochReadInflationCycle(benchmark::State &State) {
  // The adaptive read state's worst case, exercised on purpose: two
  // concurrent readers inflate the location into a pooled vector clock;
  // a later ordered write collapses it back to an epoch and recycles the
  // ClockStore row, so the cycle is allocation-free in the steady state.
  EpochDetector Det;
  Det.onThreadCreate(ThreadId(1), ThreadId(0), ObjectId(1));
  Det.onThreadCreate(ThreadId(2), ThreadId(0), ObjectId(2));
  auto Sync = [&](uint32_t T) {
    Det.onMonitorEnter(ThreadId(T), LockId(1), false);
    Det.onMonitorExit(ThreadId(T), LockId(1), false);
  };
  for (auto _ : State) {
    // Each reader first syncs with the previous round's write, then
    // reads at a not-yet-published clock — the two reads are mutually
    // concurrent but race with nothing.
    Sync(1);
    Det.onAccess(ThreadId(1), keyOf(1), AccessKind::Read, SiteId());
    Sync(2);
    Det.onAccess(ThreadId(2), keyOf(1), AccessKind::Read, SiteId());
    // Publish both reads, then write ordered after them: the shared
    // read state collapses and its ClockStore row recycles.
    Sync(1);
    Sync(2);
    Det.onMonitorEnter(ThreadId(0), LockId(1), false);
    Det.onAccess(ThreadId(0), keyOf(1), AccessKind::Write, SiteId());
    Det.onMonitorExit(ThreadId(0), LockId(1), false);
  }
}
BENCHMARK(BM_EpochReadInflationCycle);

//===----------------------------------------------------------------------===
// Serial vs sharded event throughput (docs/SHARDING.md).
//
// The same pre-generated stream — many locations, deep locksets so the
// trie work dominates routing overhead — pushed through one serial
// detector and through the ShardPool at increasing shard counts.
// events/sec is reported as items_per_second; on a multicore host the
// shard workers process disjoint location sets concurrently, so
// throughput scales with the shard count until the producer saturates.
//===----------------------------------------------------------------------===

std::vector<AccessEvent> makeThroughputStream(size_t NumEvents) {
  Rng R(271828);
  std::vector<AccessEvent> Events;
  Events.reserve(NumEvents);
  for (size_t I = 0; I != NumEvents; ++I) {
    AccessEvent E;
    E.Location = keyOf(uint32_t(R.nextBelow(1024)), uint32_t(R.nextBelow(2)));
    E.Thread = ThreadId(uint32_t(R.nextBelow(4)));
    size_t Depth = 4 + R.nextBelow(3); // 4..6 of 12 locks: deep meets
    for (size_t L = 0; L != Depth; ++L)
      E.Locks.insert(LockId(uint32_t(R.nextBelow(12))));
    E.Access = R.nextChance(1, 3) ? AccessKind::Write : AccessKind::Read;
    Events.push_back(std::move(E));
  }
  return Events;
}

void BM_SerialEventStream(benchmark::State &State) {
  std::vector<AccessEvent> Events = makeThroughputStream(1 << 14);
  for (auto _ : State) {
    State.PauseTiming();
    RaceReporter Reporter;
    Detector Det(Reporter,
                 {/*UseOwnership=*/false, /*FieldsMerged=*/false});
    State.ResumeTiming();
    for (const AccessEvent &E : Events)
      Det.handleAccess(E);
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Events.size()));
}
BENCHMARK(BM_SerialEventStream);

void BM_ShardedEventStream(benchmark::State &State) {
  uint32_t Shards = uint32_t(State.range(0));
  std::vector<AccessEvent> Events = makeThroughputStream(1 << 14);
  for (auto _ : State) {
    State.PauseTiming();
    ShardPool Pool(Shards, EventBatch::DefaultCapacity,
                   /*QueueDepth=*/16);
    State.ResumeTiming();
    for (const AccessEvent &E : Events)
      Pool.submit(DetectorEvent{E.Location, E.Thread,
                                Pool.interner().intern(E.Locks), E.Access,
                                E.Site});
    Pool.drain();
    State.PauseTiming();
    Pool.finish();
    State.ResumeTiming();
  }
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Events.size()));
}
BENCHMARK(BM_ShardedEventStream)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

BENCHMARK_MAIN();
