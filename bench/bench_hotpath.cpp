//===- bench/bench_hotpath.cpp - Detector hot-path regression harness -----==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation/throughput regression harness for the detector hot path
/// (docs/PERFORMANCE.md).  Records a set of traces once — a synthetic
/// detector-bound "refhot" stream plus the five benchmark replicas — then
/// replays each through the serial RaceRuntime and the ShardedRuntime,
/// measuring events/sec, bytes/event on disk, and allocations/event via a
/// counting global allocator.  Every trace is replayed three times per
/// runtime: the cold pass builds the access structures, the warm pass
/// flushes the ownership filter's first-touch shadow (accesses it absorbed
/// before their locations went shared), and the steady pass measures the
/// converged steady state — which the interned/arena'd hot path keeps
/// allocation-free.  The whole three-pass sequence is repeated --reps
/// times on a fresh runtime each and the best throughput per pass is
/// reported: on a shared/1-core box, run-to-run scheduler noise easily
/// reaches 2x, and best-of-N is the standard way to recover the machine's
/// actual capability from under it.
///
/// The refhot stream is crafted to defeat the per-thread access caches
/// (every access happens under a lock whose release evicts it) so nearly
/// every event reaches the trie detector — the paper's dominant cost and
/// the path this harness guards.
///
/// Two sections beyond the plain pass grid:
///
///  * A cold-pass A/B — each trace is additionally replayed through a
///    serial runtime pre-sized by a DetectorPlan ("serial+plan"): the
///    replicas use the analysis-driven planner (exactly what the pipeline's
///    `--plan=auto` computes), refhot synthesizes its plan from the stream
///    parameters (there is no program to analyze).  The cold rows of the
///    two serial runtimes are the before/after of analysis-driven
///    pre-sizing; the JSON carries them as `cold_ab`.
///
///  * A live-vs-replay comparison — each replica also runs live
///    (interpreter driving the serial runtime directly) and the best live
///    throughput is reported against the replay cold pass.  Replay strips
///    the interpretation cost, so the ratio bounds how much of a live run
///    the detector itself accounts for.  The live run happens once per
///    dispatch mode (docs/INTERPRETER.md): `switch` is the reference
///    interpreter, `threaded` is computed-goto dispatch over the
///    superinstruction shadow code.  The JSON keys the per-mode results
///    as `live_by_dispatch` and keeps `live` as the threaded entry;
///    scripts/check_dispatch_gate.py gates the smoke run against the
///    checked-in baseline.
///
///  * A hook-path A/B (docs/HOOKPATH.md) — the threaded live run repeats
///    with the hook fast path engaged: the interpreter delivers access
///    events through the devirtualized sink with the inline L0 filter in
///    front, exactly what a default `herd` invocation does.  The JSON's
///    per-trace `hook_path` section carries the unfiltered and filtered
///    live throughputs, the L0 hit rate, and the counter-reconciliation
///    identity (access_events == filter_hits + events_delivered);
///    scripts/check_hook_gate.py gates both.
///
///  * A provenance A/B (docs/REPORTS.md) — each replica's default live
///    configuration (devirtualized L0-filtered sink) repeats with
///    `--provenance=on`: a ProvenanceStore fanned out next to the
///    detector, which disables the single-sink devirtualized lane.  The
///    JSON's per-trace `provenance_ab` section carries both throughputs
///    and the overhead ratio — the honest cost (capture + lost devirt
///    lane) the docs quote; the race sets must agree.
///
///  * An epoch-vs-vector-clock A/B (docs/DETECTORS.md) — each trace also
///    replays through the epoch happens-before backend (`--detector=epoch`)
///    and the vector-clock baseline it optimizes: one timed cold replay
///    per detector, plus a second replay into the same epoch instance for
///    the converged steady state (where every structure exists and the
///    pooled ClockStore recycles rows, so allocs/event is ~0).  The two
///    must report identical racy-location sets — that feeds the trace's
///    `agreement` flag — and the JSON's per-trace `epoch_ab` section
///    carries both throughputs, the cold speedup, and the steady
///    allocation rate; scripts/check_epoch_gate.py gates all of it.
///
/// `--smoke` shrinks every trace for CI; `--reps=N` sets the repetition
/// count (default 3, 1 under --smoke); `--out=PATH` writes the JSON report
/// (the checked-in BENCH_hotpath.json is a full run).
///
//===----------------------------------------------------------------------===//

#include "analysis/DetectorPlanner.h"
#include "analysis/StaticRace.h"
#include "baselines/EpochDetector.h"
#include "baselines/VectorClockDetector.h"
#include "detect/Provenance.h"
#include "detect/RaceRuntime.h"
#include "detect/ShardedRuntime.h"
#include "detect/TraceFile.h"
#include "instr/Superinstr.h"
#include "ir/IRBuilder.h"
#include "runtime/Interpreter.h"
#include "support/Metrics.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

using namespace herd;

//===----------------------------------------------------------------------===
// Counting allocator: every global new/delete in the process, including the
// shard worker threads, lands here.  Counters are relaxed atomics; the
// measurement windows are bracketed by joins/drains, so totals are exact.
//===----------------------------------------------------------------------===

namespace {
std::atomic<uint64_t> GAllocCalls{0};
std::atomic<uint64_t> GAllocBytes{0};

void *countedAlloc(std::size_t Size) {
  void *P = std::malloc(Size ? Size : 1);
  if (!P)
    std::abort();
  GAllocCalls.fetch_add(1, std::memory_order_relaxed);
  GAllocBytes.fetch_add(Size, std::memory_order_relaxed);
  return P;
}
} // namespace

void *operator new(std::size_t Size) { return countedAlloc(Size); }
void *operator new[](std::size_t Size) { return countedAlloc(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

void *operator new(std::size_t Size, std::align_val_t Align) {
  std::size_t A = std::size_t(Align);
  void *P = std::aligned_alloc(A, (Size + A - 1) / A * A);
  if (!P)
    std::abort();
  GAllocCalls.fetch_add(1, std::memory_order_relaxed);
  GAllocBytes.fetch_add(Size, std::memory_order_relaxed);
  return P;
}
void *operator new[](std::size_t Size, std::align_val_t Align) {
  return operator new(Size, Align);
}
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

//===----------------------------------------------------------------------===
// The synthetic reference stream
//===----------------------------------------------------------------------===

/// Shape of the detector-bound reference stream.  Every access happens
/// under at least one real lock, so the per-lock cache eviction at the
/// matching monitorexit guarantees the next round misses the cache; the
/// location window strides through a footprint far larger than the cache,
/// and threads overlap on the same objects under differing locksets, so
/// the tries see growth, weaker-than filtering, and genuine races.
struct RefParams {
  uint32_t Threads = 8;  ///< worker threads (ids 1..Threads; 0 is main)
  uint32_t Locks = 16;   ///< real lock universe
  uint32_t Objects = 4096;
  uint32_t Fields = 4;
  uint32_t Window = 64;  ///< accesses per locked region
  uint32_t Rounds = 3600;
};

/// Emits the reference stream into \p Sink (a TraceWriter when recording).
/// Fully deterministic arithmetic — no RNG — so old and new builds replay
/// the byte-identical trace.
void emitReferenceStream(RuntimeHooks &Sink, const RefParams &P) {
  for (uint32_t T = 1; T <= P.Threads; ++T)
    Sink.onThreadCreate(ThreadId(T), ThreadId(0), ObjectId(T));

  for (uint32_t Round = 0; Round != P.Rounds; ++Round) {
    for (uint32_t T = 1; T <= P.Threads; ++T) {
      LockId Outer = LockId((Round + T) % P.Locks);
      LockId Inner = LockId((Round * 5 + T * 7 + 1) % P.Locks);
      bool Nest = ((Round + T) % 3 == 0) && Inner != Outer;

      Sink.onMonitorEnter(ThreadId(T), Outer, /*Recursive=*/false);
      if (Nest)
        Sink.onMonitorEnter(ThreadId(T), Inner, /*Recursive=*/false);

      for (uint32_t I = 0; I != P.Window; ++I) {
        uint32_t Obj = (Round * 97 + T * 31 + I * 13) % P.Objects;
        uint32_t Field = I % P.Fields;
        AccessKind Kind =
            (I + T) % 3 == 0 ? AccessKind::Write : AccessKind::Read;
        Sink.onAccess(ThreadId(T), LocationKey::forField(ObjectId(Obj),
                                                         FieldId(Field)),
                      Kind, SiteId(I % 32));
      }

      if (Nest)
        Sink.onMonitorExit(ThreadId(T), Inner, /*StillHeld=*/false);
      Sink.onMonitorExit(ThreadId(T), Outer, /*StillHeld=*/false);
    }
  }
}

/// Synthesizes the capacity plan for the reference stream from its own
/// parameters — the stand-in for `--plan=auto` on a trace that has no
/// program behind it.  The location count is exact (every (object, field)
/// pair is touched); the trie sizing uses the measured full-run density of
/// ~54 nodes per location, rounded up to 64.
DetectorPlan refhotPlan(const RefParams &P) {
  DetectorPlan Plan;
  Plan.ExpectedLocations = uint64_t(P.Objects) * P.Fields;
  Plan.ExpectedSharedLocations = Plan.ExpectedLocations;
  Plan.ExpectedTrieNodes = Plan.ExpectedLocations * 64;
  Plan.ExpectedTrieEdges = Plan.ExpectedTrieNodes;
  Plan.ExpectedThreads = P.Threads;
  // Locksets: {S_t, outer} and {S_t, outer, inner} per (thread, lock)
  // combination, plus transients — 8*16 + 8*16*16 ≈ 2.2k for the default
  // shape; the next power of two covers it.
  Plan.ExpectedLocksets = 4096;
  for (uint32_t T = 1; T <= P.Threads; ++T) {
    SortedIdSet<LockId> Dummy;
    Dummy.insert(RaceRuntime::dummyLockOf(ThreadId(T)));
    Plan.PreinternLocksets.push_back(std::move(Dummy));
  }
  return Plan;
}

//===----------------------------------------------------------------------===
// The hook-bound synthetic workload (docs/HOOKPATH.md)
//===----------------------------------------------------------------------===

/// `hotfield` — a tight single-threaded loop whose body is sixteen accesses
/// to the same field.  After the first iteration every access is a
/// detector-side cache hit, so under the fused threaded dispatch the
/// per-event interpretation cost is a few nanoseconds and the hook path is
/// what dominates a live run.  That makes this the trace where the L0
/// filter's benefit is directly visible: the five replicas are
/// interpretation-bound (live-vs-replay ratios well below 1), so their
/// filtered/unfiltered live A/B hovers near 1.0x no matter how cheap the
/// probe is; hotfield isolates the quantity this PR optimizes.
Workload buildHotField(uint32_t Scale) {
  Workload W;
  W.Name = "hotfield";
  W.Description = "hook-bound synthetic: tight redundant same-field loop";
  W.DynamicThreads = 1;
  W.ExpectedRacyObjectsFull = 0;
  IRBuilder B(W.P);
  ClassId Box = B.makeClass("Box");
  FieldId F = B.makeField(Box, "f");
  B.startMain();
  RegId Obj = B.emitNew(Box);
  B.emitPutField(Obj, F, B.emitConst(1));
  RegId N = B.emitConst(int64_t(20000) * Scale);
  B.forLoop(0, N, 1, [&](RegId) {
    // Eight read/write pairs: enough straight-line accesses that the loop
    // bookkeeping amortizes away and the stream is ~100% L0 hits.
    for (int K = 0; K != 8; ++K)
      B.emitPutField(Obj, F, B.emitGetField(Obj, F));
  });
  B.emitPrint(B.emitGetField(Obj, F));
  B.emitReturn();
  return W;
}

//===----------------------------------------------------------------------===
// Measurement plumbing
//===----------------------------------------------------------------------===

struct PassResult {
  std::string Runtime; ///< "serial" or "sharded<N>"
  std::string Pass;    ///< "cold", "warm" or "steady"
  double Seconds = 0;
  double EventsPerSec = 0;
  uint64_t Allocs = 0;
  uint64_t AllocBytes = 0;
  double AllocsPerEvent = 0;
  double AllocBytesPerEvent = 0;
};

/// The live-execution counterpart of one replica trace: the interpreter
/// driving the serial runtime directly, no trace file in between.
struct LiveResult {
  bool Present = false;
  double Seconds = 0;
  double EventsPerSec = 0;
  uint64_t Allocs = 0;
  double AllocsPerEvent = 0;
  double RatioVsReplayCold = 0; ///< live events/s ÷ replay cold events/s
  /// Dispatch-mechanics counters from the run (InterpResult): how many
  /// superinstructions ran their full sequence and how the batched
  /// quantum retirement behaved.  Deterministic per (program, mode) —
  /// identical across reps — and zero under switch dispatch.
  uint64_t FusedExecs = 0;
  uint64_t BlockRetireHits = 0;
  uint64_t BlockRetiredSteps = 0;
};

/// The hook-path A/B for one replica: the threaded live run with the
/// legacy virtual hook path ("unfiltered") against the devirtualized
/// L0-filtered fast path ("filtered"), plus the filter's own counters.
struct HookPathResult {
  bool Present = false;
  double UnfilteredEventsPerSec = 0; ///< virtual dispatch, no L0 probe
  double FilteredEventsPerSec = 0;   ///< devirtualized sink + L0 filter
  double Speedup = 0;                ///< filtered ÷ unfiltered
  uint64_t AccessEvents = 0;         ///< interpreter-side emit count
  uint64_t FilterHits = 0;
  uint64_t FilterMisses = 0;
  double FilterHitRate = 0;          ///< hits ÷ (hits + misses)
  uint64_t EventsDelivered = 0;      ///< runtime-side events_seen
  /// access_events == filter_hits + events_delivered, exactly.
  bool CountersReconcile = false;
};

/// The provenance on/off live A/B for one replica (docs/REPORTS.md): the
/// default filtered live path against the same run with a ProvenanceStore
/// fanned out next to the detector (which forfeits the devirtualized
/// single-sink lane — the cost reported here is the honest total).
struct ProvenanceAbResult {
  bool Present = false;
  double OffEventsPerSec = 0; ///< default path (devirt sink + L0 filter)
  double OnEventsPerSec = 0;  ///< fanout of detector + ProvenanceStore
  double OverheadRatio = 0;   ///< off ÷ on (>= 1.0 means on is slower)
  uint64_t AccessesObserved = 0;
  bool Agreement = false; ///< identical racy-location sets
};

/// The epoch-vs-vector-clock A/B for one trace (docs/DETECTORS.md): both
/// happens-before detectors replay the same stream; the epoch backend's
/// O(1) common-case checks are the quantity under test.
struct EpochAbResult {
  bool Present = false;
  double VcEventsPerSec = 0;       ///< vector-clock baseline, cold replay
  double EpochColdEventsPerSec = 0;
  double EpochSteadyEventsPerSec = 0;
  double Speedup = 0;              ///< epoch cold ÷ vector-clock cold
  double SteadyAllocsPerEvent = 0; ///< second replay, same instance
  uint64_t RacyLocations = 0;
  bool Agreement = false; ///< identical racy-location sets
};

struct TraceReport {
  std::string Name;
  uint64_t Events = 0;
  uint64_t FileBytes = 0;
  double BytesPerEvent = 0;
  std::vector<PassResult> Passes;
  bool Agreement = true; ///< all runtimes report the same racy locations
  /// Cold-pass A/B: allocations per event on the first (structure-building)
  /// pass, unplanned serial vs plan-pre-sized serial.
  double ColdAllocsPerEvent = 0;
  double ColdAllocsPerEventPlanned = 0;
  /// The threaded-dispatch live run — the default `herd` hot path.
  LiveResult Live;
  /// Live runs keyed by dispatch mode ("switch", "threaded"); Live above
  /// duplicates the threaded entry so older consumers keep working.
  std::vector<std::pair<std::string, LiveResult>> LiveModes;
  /// The hook-path filtered-vs-unfiltered live A/B (docs/HOOKPATH.md).
  HookPathResult HookPath;
  /// The provenance-capture on/off live A/B (docs/REPORTS.md).
  ProvenanceAbResult ProvenanceAb;
  /// The epoch-vs-vector-clock happens-before A/B (docs/DETECTORS.md).
  EpochAbResult EpochAb;
};

/// Replays \p Path once into \p Sink, timing and alloc-counting the pass.
/// \p Barrier runs inside the measured window (the sharded drain).
template <typename Barrier>
bool measuredReplay(const std::string &Path, RuntimeHooks &Sink,
                    uint64_t Events, const char *RuntimeName,
                    const char *PassName, Barrier RunBarrier,
                    std::vector<PassResult> &Out) {
  TraceReader Reader;
  if (TraceResult TR = Reader.open(Path); !TR.Ok) {
    std::fprintf(stderr, "open %s: %s\n", Path.c_str(), TR.Error.c_str());
    return false;
  }
  uint64_t Allocs0 = GAllocCalls.load(std::memory_order_relaxed);
  uint64_t Bytes0 = GAllocBytes.load(std::memory_order_relaxed);
  auto T0 = std::chrono::steady_clock::now();
  if (TraceResult TR = Reader.replayInto(Sink); !TR.Ok) {
    std::fprintf(stderr, "replay %s: %s\n", Path.c_str(), TR.Error.c_str());
    return false;
  }
  RunBarrier();
  double Seconds = secondsSince(T0);
  uint64_t Allocs = GAllocCalls.load(std::memory_order_relaxed) - Allocs0;
  uint64_t Bytes = GAllocBytes.load(std::memory_order_relaxed) - Bytes0;

  PassResult R;
  R.Runtime = RuntimeName;
  R.Pass = PassName;
  R.Seconds = Seconds;
  R.EventsPerSec = Seconds > 0 ? double(Events) / Seconds : 0.0;
  R.Allocs = Allocs;
  R.AllocBytes = Bytes;
  R.AllocsPerEvent = Events ? double(Allocs) / double(Events) : 0.0;
  R.AllocBytesPerEvent = Events ? double(Bytes) / double(Events) : 0.0;
  Out.push_back(R);
  return true;
}

/// Merges one repetition's passes into the running best-of-N: per pass,
/// keep the rep with the higher throughput (and its alloc counters — the
/// structure-building work is identical across reps, so the counters of
/// the fastest rep are as representative as any).
void keepBest(std::vector<PassResult> &Best, std::vector<PassResult> &Rep) {
  if (Best.empty()) {
    Best = std::move(Rep);
    return;
  }
  for (size_t I = 0; I != Best.size() && I != Rep.size(); ++I)
    if (Rep[I].EventsPerSec > Best[I].EventsPerSec)
      Best[I] = Rep[I];
}

void printPass(const std::string &Trace, const PassResult &R) {
  std::printf("%-8s %-9s %-5s %12.0f %10.4f %12llu %10.3f %10.1f\n",
              Trace.c_str(), R.Runtime.c_str(), R.Pass.c_str(),
              R.EventsPerSec, R.Seconds, (unsigned long long)R.Allocs,
              R.AllocsPerEvent, R.AllocBytesPerEvent);
}

void writeJson(std::FILE *F, const std::vector<TraceReport> &Reports,
               const MetricsRegistry &Metrics, bool Smoke, uint32_t Reps) {
  std::fprintf(F, "{\n");
  std::fprintf(F, "  \"schema\": \"herd-bench-hotpath-v6\",\n");
  std::fprintf(F, "  \"smoke\": %s,\n", Smoke ? "true" : "false");
  std::fprintf(F, "  \"reps\": %u,\n", Reps);
  // The run's metrics-registry counters (support/Metrics.h), name-sorted:
  // one `live.<trace>.<mode>.*` triple per live run, describing how the
  // work was dispatched (fused executions, batched quantum retirement).
  {
    auto Counters = Metrics.counterValues();
    std::fprintf(F, "  \"metrics\": {\n");
    for (size_t I = 0; I != Counters.size(); ++I)
      std::fprintf(F, "    \"%s\": %llu%s\n", Counters[I].first.c_str(),
                   (unsigned long long)Counters[I].second,
                   I + 1 != Counters.size() ? "," : "");
    std::fprintf(F, "  },\n");
  }
  std::fprintf(F, "  \"traces\": [\n");
  for (size_t I = 0; I != Reports.size(); ++I) {
    const TraceReport &T = Reports[I];
    std::fprintf(F, "    {\n");
    std::fprintf(F, "      \"name\": \"%s\",\n", T.Name.c_str());
    std::fprintf(F, "      \"events\": %llu,\n",
                 (unsigned long long)T.Events);
    std::fprintf(F, "      \"file_bytes\": %llu,\n",
                 (unsigned long long)T.FileBytes);
    std::fprintf(F, "      \"bytes_per_event\": %.2f,\n", T.BytesPerEvent);
    std::fprintf(F, "      \"agreement\": %s,\n",
                 T.Agreement ? "true" : "false");
    std::fprintf(F,
                 "      \"cold_ab\": {\"allocs_per_event\": %.4f, "
                 "\"allocs_per_event_planned\": %.4f},\n",
                 T.ColdAllocsPerEvent, T.ColdAllocsPerEventPlanned);
    if (T.Live.Present)
      std::fprintf(F,
                   "      \"live\": {\"seconds\": %.6f, "
                   "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f, "
                   "\"ratio_vs_replay_cold\": %.3f, "
                   "\"fused_execs\": %llu, \"block_retire_hits\": %llu, "
                   "\"block_retired_steps\": %llu},\n",
                   T.Live.Seconds, T.Live.EventsPerSec,
                   T.Live.AllocsPerEvent, T.Live.RatioVsReplayCold,
                   (unsigned long long)T.Live.FusedExecs,
                   (unsigned long long)T.Live.BlockRetireHits,
                   (unsigned long long)T.Live.BlockRetiredSteps);
    if (!T.LiveModes.empty()) {
      std::fprintf(F, "      \"live_by_dispatch\": {\n");
      for (size_t J = 0; J != T.LiveModes.size(); ++J) {
        const LiveResult &L = T.LiveModes[J].second;
        std::fprintf(F,
                     "        \"%s\": {\"seconds\": %.6f, "
                     "\"events_per_sec\": %.0f, \"allocs_per_event\": %.4f, "
                     "\"ratio_vs_replay_cold\": %.3f, "
                     "\"fused_execs\": %llu, \"block_retire_hits\": %llu, "
                     "\"block_retired_steps\": %llu}%s\n",
                     T.LiveModes[J].first.c_str(), L.Seconds, L.EventsPerSec,
                     L.AllocsPerEvent, L.RatioVsReplayCold,
                     (unsigned long long)L.FusedExecs,
                     (unsigned long long)L.BlockRetireHits,
                     (unsigned long long)L.BlockRetiredSteps,
                     J + 1 != T.LiveModes.size() ? "," : "");
      }
      std::fprintf(F, "      },\n");
    }
    if (T.HookPath.Present)
      std::fprintf(F,
                   "      \"hook_path\": {\"live_unfiltered_events_per_sec\":"
                   " %.0f, \"live_filtered_events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"access_events\": %llu, "
                   "\"filter_hits\": %llu, \"filter_misses\": %llu, "
                   "\"filter_hit_rate\": %.4f, \"events_delivered\": %llu, "
                   "\"counters_reconcile\": %s},\n",
                   T.HookPath.UnfilteredEventsPerSec,
                   T.HookPath.FilteredEventsPerSec, T.HookPath.Speedup,
                   (unsigned long long)T.HookPath.AccessEvents,
                   (unsigned long long)T.HookPath.FilterHits,
                   (unsigned long long)T.HookPath.FilterMisses,
                   T.HookPath.FilterHitRate,
                   (unsigned long long)T.HookPath.EventsDelivered,
                   T.HookPath.CountersReconcile ? "true" : "false");
    if (T.ProvenanceAb.Present)
      std::fprintf(F,
                   "      \"provenance_ab\": {\"off_events_per_sec\": %.0f, "
                   "\"on_events_per_sec\": %.0f, \"overhead_ratio\": %.3f, "
                   "\"accesses_observed\": %llu, \"agreement\": %s},\n",
                   T.ProvenanceAb.OffEventsPerSec,
                   T.ProvenanceAb.OnEventsPerSec,
                   T.ProvenanceAb.OverheadRatio,
                   (unsigned long long)T.ProvenanceAb.AccessesObserved,
                   T.ProvenanceAb.Agreement ? "true" : "false");
    if (T.EpochAb.Present)
      std::fprintf(F,
                   "      \"epoch_ab\": {\"vc_events_per_sec\": %.0f, "
                   "\"epoch_cold_events_per_sec\": %.0f, "
                   "\"epoch_steady_events_per_sec\": %.0f, "
                   "\"speedup\": %.3f, \"steady_allocs_per_event\": %.4f, "
                   "\"racy_locations\": %llu, \"agreement\": %s},\n",
                   T.EpochAb.VcEventsPerSec, T.EpochAb.EpochColdEventsPerSec,
                   T.EpochAb.EpochSteadyEventsPerSec, T.EpochAb.Speedup,
                   T.EpochAb.SteadyAllocsPerEvent,
                   (unsigned long long)T.EpochAb.RacyLocations,
                   T.EpochAb.Agreement ? "true" : "false");
    std::fprintf(F, "      \"passes\": [\n");
    for (size_t J = 0; J != T.Passes.size(); ++J) {
      const PassResult &P = T.Passes[J];
      std::fprintf(F,
                   "        {\"runtime\": \"%s\", \"pass\": \"%s\", "
                   "\"seconds\": %.6f, \"events_per_sec\": %.0f, "
                   "\"allocs\": %llu, \"allocs_per_event\": %.4f, "
                   "\"alloc_bytes_per_event\": %.2f}%s\n",
                   P.Runtime.c_str(), P.Pass.c_str(), P.Seconds,
                   P.EventsPerSec, (unsigned long long)P.Allocs,
                   P.AllocsPerEvent, P.AllocBytesPerEvent,
                   J + 1 != T.Passes.size() ? "," : "");
    }
    std::fprintf(F, "      ]\n");
    std::fprintf(F, "    }%s\n", I + 1 != Reports.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n");
  std::fprintf(F, "}\n");
}

} // namespace

int main(int argc, char **argv) {
  bool Smoke = false;
  uint32_t Reps = 0; // 0 = default (3, or 1 under --smoke)
  std::string OutPath;
  for (int I = 1; I != argc; ++I) {
    if (std::strcmp(argv[I], "--smoke") == 0) {
      Smoke = true;
    } else if (std::strncmp(argv[I], "--out=", 6) == 0) {
      OutPath = argv[I] + 6;
    } else if (std::strncmp(argv[I], "--reps=", 7) == 0) {
      long N = std::atol(argv[I] + 7);
      if (N < 1 || N > 100) {
        std::fprintf(stderr, "--reps must be in [1, 100]\n");
        return 2;
      }
      Reps = uint32_t(N);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps=N] [--out=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (Reps == 0)
    Reps = Smoke ? 1 : 3;

  struct Recorded {
    std::string Name;
    std::string Path;
    uint64_t Events = 0;
    uint64_t Bytes = 0;
    DetectorPlan Plan;             ///< pre-sizing for the "serial+plan" A/B
    const Program *Prog = nullptr; ///< non-null for replicas: live re-run
  };
  std::vector<Recorded> Traces;

  // Record the synthetic detector-bound reference stream.
  {
    RefParams P;
    if (Smoke)
      P.Rounds = 150;
    std::string Path = "/tmp/herd_hotpath_refhot.trace";
    TraceWriter Writer;
    if (TraceResult TR = Writer.open(Path); !TR.Ok) {
      std::fprintf(stderr, "refhot: %s\n", TR.Error.c_str());
      return 1;
    }
    emitReferenceStream(Writer, P);
    if (TraceResult TR = Writer.close(); !TR.Ok) {
      std::fprintf(stderr, "refhot: %s\n", TR.Error.c_str());
      return 1;
    }
    Recorded R;
    R.Name = "refhot";
    R.Path = Path;
    R.Events = Writer.recordsWritten();
    R.Bytes = Writer.bytesWritten();
    R.Plan = refhotPlan(P);
    Traces.push_back(std::move(R));
  }

  // Record the five benchmark replicas through the interpreter.  The
  // workloads vector outlives the measurement loop so the live section can
  // re-run each program.
  std::vector<Workload> Workloads = buildAllWorkloads(Smoke ? 1 : 4);
  // Plus the hook-bound synthetic (docs/HOOKPATH.md): the trace whose live
  // run is dominated by hook cost rather than interpretation, where the L0
  // filter's speedup is actually measurable.
  Workloads.push_back(buildHotField(Smoke ? 1 : 4));
  for (Workload &W : Workloads) {
    std::string Path = "/tmp/herd_hotpath_" + W.Name + ".trace";
    TraceWriter Writer;
    if (TraceResult TR = Writer.open(Path); !TR.Ok) {
      std::fprintf(stderr, "%s: %s\n", W.Name.c_str(), TR.Error.c_str());
      return 1;
    }
    InterpOptions Opts;
    Opts.TraceEveryAccess = true;
    Interpreter Interp(W.P, &Writer, Opts);
    InterpResult R = Interp.run();
    if (TraceResult TR = Writer.close(); !R.Ok || !TR.Ok) {
      std::fprintf(stderr, "%s failed: %s%s\n", W.Name.c_str(),
                   R.Error.c_str(), TR.Error.c_str());
      return 1;
    }
    Recorded Rec;
    Rec.Name = W.Name;
    Rec.Path = Path;
    Rec.Events = Writer.recordsWritten();
    Rec.Bytes = Writer.bytesWritten();
    // The analysis-driven plan — the same computation `--plan=auto` runs
    // inside the pipeline's analysis phase.
    StaticRaceAnalysis Races(W.P);
    Races.run();
    Rec.Plan = planDetector(W.P, Races);
    Rec.Prog = &W.P;
    Traces.push_back(std::move(Rec));
  }

  const uint32_t FullShardCounts[] = {2, 4};
  const uint32_t SmokeShardCounts[] = {2};
  const uint32_t *ShardCounts = Smoke ? SmokeShardCounts : FullShardCounts;
  size_t NumShardCounts = Smoke ? 1 : 2;

  std::printf("Detector hot-path regression harness "
              "(docs/PERFORMANCE.md)%s\n\n",
              Smoke ? " [smoke]" : "");
  std::printf("%-8s %-9s %-5s %12s %10s %12s %10s %10s\n", "trace",
              "runtime", "pass", "events/s", "seconds", "allocs",
              "allocs/ev", "bytes/ev");

  std::vector<TraceReport> Reports;
  MetricsRegistry Metrics;
  bool AllAgree = true;

  for (const Recorded &T : Traces) {
    TraceReport Report;
    Report.Name = T.Name;
    Report.Events = T.Events;
    Report.FileBytes = T.Bytes;
    Report.BytesPerEvent =
        T.Events ? double(T.Bytes) / double(T.Events) : 0.0;

    // Serial: the cold pass builds the structures; the warm pass still
    // discovers the accesses the ownership filter absorbed before their
    // locations went shared; by the steady pass every event is cache-hit
    // or weaker-than-filtered — the allocation-free steady state.  Each
    // rep replays the whole sequence on a fresh runtime; the last rep's
    // runtime survives for the agreement check below.
    auto NoBarrier = [] {};
    std::unique_ptr<RaceRuntime> Serial;
    {
      std::vector<PassResult> Best;
      for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
        Serial = std::make_unique<RaceRuntime>();
        std::vector<PassResult> One;
        if (!measuredReplay(T.Path, *Serial, T.Events, "serial", "cold",
                            NoBarrier, One) ||
            !measuredReplay(T.Path, *Serial, T.Events, "serial", "warm",
                            NoBarrier, One) ||
            !measuredReplay(T.Path, *Serial, T.Events, "serial", "steady",
                            NoBarrier, One))
          return 1;
        Serial->onRunEnd();
        keepBest(Best, One);
      }
      for (PassResult &P : Best) {
        if (P.Pass == "cold")
          Report.ColdAllocsPerEvent = P.AllocsPerEvent;
        printPass(Report.Name, P);
        Report.Passes.push_back(std::move(P));
      }
    }

    // Serial pre-sized by the DetectorPlan: the cold-pass A/B against the
    // unplanned serial rows above.  The last rep's runtime joins the
    // agreement check — plans must never change what is reported.
    {
      std::vector<PassResult> Best;
      std::unique_ptr<RaceRuntime> Planned;
      for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
        RaceRuntimeOptions POpts;
        POpts.Plan = T.Plan;
        Planned = std::make_unique<RaceRuntime>(POpts);
        std::vector<PassResult> One;
        if (!measuredReplay(T.Path, *Planned, T.Events, "serial+plan",
                            "cold", NoBarrier, One) ||
            !measuredReplay(T.Path, *Planned, T.Events, "serial+plan",
                            "warm", NoBarrier, One) ||
            !measuredReplay(T.Path, *Planned, T.Events, "serial+plan",
                            "steady", NoBarrier, One))
          return 1;
        Planned->onRunEnd();
        keepBest(Best, One);
      }
      bool Agree = Planned->reporter().reportedLocations() ==
                   Serial->reporter().reportedLocations();
      Report.Agreement = Report.Agreement && Agree;
      for (PassResult &P : Best) {
        if (P.Pass == "cold")
          Report.ColdAllocsPerEventPlanned = P.AllocsPerEvent;
        printPass(Report.Name, P);
        Report.Passes.push_back(std::move(P));
      }
    }

    for (size_t SI = 0; SI != NumShardCounts; ++SI) {
      uint32_t Shards = ShardCounts[SI];
      ShardedRuntimeOptions SOpts;
      SOpts.NumShards = Shards;
      std::string Name = "sharded" + std::to_string(Shards);
      std::vector<PassResult> Best;
      for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
        ShardedRuntime Sharded(SOpts);
        // stats() is the public drain barrier: the measured window covers
        // every event being fully processed, not just enqueued.
        auto Drain = [&Sharded] { (void)Sharded.stats(); };
        std::vector<PassResult> One;
        if (!measuredReplay(T.Path, Sharded, T.Events, Name.c_str(), "cold",
                            Drain, One) ||
            !measuredReplay(T.Path, Sharded, T.Events, Name.c_str(), "warm",
                            Drain, One) ||
            !measuredReplay(T.Path, Sharded, T.Events, Name.c_str(),
                            "steady", Drain, One))
          return 1;
        bool Agree = Sharded.reporter().reportedLocations() ==
                     Serial->reporter().reportedLocations();
        Report.Agreement = Report.Agreement && Agree;
        Sharded.onRunEnd();
        keepBest(Best, One);
      }
      for (PassResult &P : Best) {
        printPass(Report.Name, P);
        Report.Passes.push_back(std::move(P));
      }
    }

    // Epoch-vs-vector-clock A/B (docs/DETECTORS.md): the same trace
    // through both happens-before backends.  The vector-clock baseline
    // gets one timed cold replay per rep on a fresh detector; the epoch
    // backend gets a timed cold replay on a fresh plan-pre-sized detector
    // plus a second timed replay into the SAME instance — the converged
    // steady state, where the same-epoch fast paths dominate and the
    // pooled ClockStore hands back recycled rows, so the allocation rate
    // must sit at ~0.  The two detectors implement the same
    // happens-before relation and must report identical racy-location
    // sets (their race notion differs from the lockset runtimes above,
    // so they are compared against each other, not against Serial).
    {
      std::unique_ptr<VectorClockDetector> VC;
      std::vector<PassResult> BestVc;
      for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
        VC = std::make_unique<VectorClockDetector>();
        std::vector<PassResult> One;
        if (!measuredReplay(T.Path, *VC, T.Events, "vclock", "cold",
                            NoBarrier, One))
          return 1;
        keepBest(BestVc, One);
      }

      std::unique_ptr<EpochDetector> Epoch;
      std::vector<PassResult> BestEpoch;
      for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
        Epoch = std::make_unique<EpochDetector>(T.Plan);
        std::vector<PassResult> One;
        if (!measuredReplay(T.Path, *Epoch, T.Events, "epoch", "cold",
                            NoBarrier, One) ||
            !measuredReplay(T.Path, *Epoch, T.Events, "epoch", "steady",
                            NoBarrier, One))
          return 1;
        keepBest(BestEpoch, One);
      }

      EpochAbResult AB;
      AB.Present = true;
      AB.Agreement = Epoch->reportedLocations() == VC->reportedLocations();
      AB.VcEventsPerSec = BestVc[0].EventsPerSec;
      AB.EpochColdEventsPerSec = BestEpoch[0].EventsPerSec;
      AB.EpochSteadyEventsPerSec = BestEpoch[1].EventsPerSec;
      AB.SteadyAllocsPerEvent = BestEpoch[1].AllocsPerEvent;
      AB.Speedup = AB.VcEventsPerSec > 0
                       ? AB.EpochColdEventsPerSec / AB.VcEventsPerSec
                       : 0.0;
      AB.RacyLocations = Epoch->reportedLocations().size();
      Report.Agreement = Report.Agreement && AB.Agreement;
      Report.EpochAb = AB;
      for (PassResult &P : BestVc) {
        printPass(Report.Name, P);
        Report.Passes.push_back(std::move(P));
      }
      for (PassResult &P : BestEpoch) {
        printPass(Report.Name, P);
        Report.Passes.push_back(std::move(P));
      }
      std::printf("%-8s epoch A/B: %.2fx vs vclock cold, steady %.4f "
                  "allocs/ev, %llu racy location(s), agreement %s\n",
                  Report.Name.c_str(), AB.Speedup, AB.SteadyAllocsPerEvent,
                  (unsigned long long)AB.RacyLocations,
                  AB.Agreement ? "yes" : "NO!");
    }

    // Live serial: the interpreter drives the planned runtime directly —
    // the path a real `herd` invocation takes.  Compare against the replay
    // cold pass (same structure-building work, minus interpretation).
    // The interpreter is deterministic and dispatch never changes behavior
    // (docs/INTERPRETER.md), so every live run — either mode — emits
    // exactly the recorded event stream and must report the same racy
    // locations.  Both modes run so the JSON carries the switch/threaded
    // live A/B; `live` stays the threaded (default fast path) entry.
    if (T.Prog) {
      // Passes[0] is the serial cold row.
      double ReplayColdEps =
          Report.Passes.empty() ? 0.0 : Report.Passes[0].EventsPerSec;
      ThreadedCode Fused = buildThreadedCode(*T.Prog);
      struct LiveMode {
        const char *Name;
        const char *Row;
        DispatchMode Mode;
      };
      const LiveMode Modes[] = {
          {"switch", "live[sw]", DispatchMode::Switch},
          {"threaded", "live[th]", DispatchMode::Threaded},
      };
      for (const LiveMode &M : Modes) {
        LiveResult Live;
        std::unique_ptr<RaceRuntime> LiveRT;
        for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
          RaceRuntimeOptions LOpts;
          LOpts.Plan = T.Plan;
          LiveRT = std::make_unique<RaceRuntime>(LOpts);
          InterpOptions IOpts;
          IOpts.TraceEveryAccess = true;
          IOpts.Dispatch = M.Mode;
          IOpts.Fused =
              M.Mode == DispatchMode::Threaded ? &Fused : nullptr;
          Interpreter Interp(*T.Prog, LiveRT.get(), IOpts);
          uint64_t Allocs0 = GAllocCalls.load(std::memory_order_relaxed);
          auto T0 = std::chrono::steady_clock::now();
          InterpResult R = Interp.run();
          double Seconds = secondsSince(T0);
          uint64_t Allocs =
              GAllocCalls.load(std::memory_order_relaxed) - Allocs0;
          LiveRT->onRunEnd();
          if (!R.Ok) {
            std::fprintf(stderr, "%s live (%s): %s\n", Report.Name.c_str(),
                         M.Name, R.Error.c_str());
            return 1;
          }
          double Eps = Seconds > 0 ? double(T.Events) / Seconds : 0.0;
          if (!Live.Present || Eps > Live.EventsPerSec) {
            Live.Present = true;
            Live.Seconds = Seconds;
            Live.EventsPerSec = Eps;
            Live.Allocs = Allocs;
            Live.AllocsPerEvent =
                T.Events ? double(Allocs) / double(T.Events) : 0.0;
            Live.FusedExecs = R.Fused.total();
            Live.BlockRetireHits = R.BlockRetireHits;
            Live.BlockRetiredSteps = R.BlockRetiredSteps;
          }
        }
        Live.RatioVsReplayCold =
            ReplayColdEps > 0 ? Live.EventsPerSec / ReplayColdEps : 0.0;
        // Feed the dispatch-mechanics counters through the metrics
        // registry (support/Metrics.h) so the JSON's `metrics` section is
        // the same named-counter surface `--stats=json` exposes.
        std::string Prefix = "live." + Report.Name + "." + M.Name + ".";
        Metrics.counter(Prefix + "fused_execs").add(Live.FusedExecs);
        Metrics.counter(Prefix + "block_retire_hits")
            .add(Live.BlockRetireHits);
        Metrics.counter(Prefix + "block_retired_steps")
            .add(Live.BlockRetiredSteps);
        bool Agree = LiveRT->reporter().reportedLocations() ==
                     Serial->reporter().reportedLocations();
        Report.Agreement = Report.Agreement && Agree;
        std::printf("%-8s %-9s %-5s %12.0f %10.4f %12llu %10.3f %10s  "
                    "(%.2fx of replay cold)\n",
                    Report.Name.c_str(), M.Row, "cold", Live.EventsPerSec,
                    Live.Seconds, (unsigned long long)Live.Allocs,
                    Live.AllocsPerEvent, "-", Live.RatioVsReplayCold);
        if (M.Mode == DispatchMode::Threaded)
          Report.Live = Live;
        Report.LiveModes.emplace_back(M.Name, Live);
      }

      // Hook-path A/B (docs/HOOKPATH.md): the threaded live run again,
      // now with the hook fast path engaged — the interpreter delivers
      // access events through the devirtualized serial sink with the
      // inline L0 filter in front, exactly what a default `herd`
      // invocation runs.  Same program, same schedule, same reports; the
      // only difference is how redundant events die.
      {
        HookPathResult HP;
        HP.UnfilteredEventsPerSec = Report.Live.EventsPerSec;
        std::unique_ptr<RaceRuntime> FastRT;
        uint64_t AccessEvents = 0;
        for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
          RaceRuntimeOptions LOpts;
          LOpts.Plan = T.Plan;
          LOpts.HookFilter = true;
          FastRT = std::make_unique<RaceRuntime>(LOpts);
          InterpOptions IOpts;
          IOpts.TraceEveryAccess = true;
          IOpts.Dispatch = DispatchMode::Threaded;
          IOpts.Fused = &Fused;
          IOpts.SerialSink = FastRT.get();
          Interpreter Interp(*T.Prog, FastRT.get(), IOpts);
          auto T0 = std::chrono::steady_clock::now();
          InterpResult R = Interp.run();
          double Seconds = secondsSince(T0);
          FastRT->onRunEnd();
          if (!R.Ok) {
            std::fprintf(stderr, "%s live (filtered): %s\n",
                         Report.Name.c_str(), R.Error.c_str());
            return 1;
          }
          double Eps = Seconds > 0 ? double(T.Events) / Seconds : 0.0;
          if (!HP.Present || Eps > HP.FilteredEventsPerSec) {
            HP.Present = true;
            HP.FilteredEventsPerSec = Eps;
          }
          AccessEvents = R.AccessEvents;
        }
        RaceRuntimeStats S = FastRT->stats();
        HP.AccessEvents = AccessEvents;
        HP.FilterHits = S.Hook.FilterHits;
        HP.FilterMisses = S.Hook.FilterMisses;
        uint64_t Probes = HP.FilterHits + HP.FilterMisses;
        HP.FilterHitRate =
            Probes ? double(HP.FilterHits) / double(Probes) : 0.0;
        HP.EventsDelivered = S.EventsSeen;
        HP.CountersReconcile =
            AccessEvents == HP.FilterHits + S.EventsSeen;
        HP.Speedup = HP.UnfilteredEventsPerSec > 0
                         ? HP.FilteredEventsPerSec /
                               HP.UnfilteredEventsPerSec
                         : 0.0;
        bool Agree = FastRT->reporter().reportedLocations() ==
                     Serial->reporter().reportedLocations();
        Report.Agreement = Report.Agreement && Agree;
        std::printf("%-8s %-9s %-5s %12.0f %10s %12s %10s %10s  "
                    "(%.2fx of unfiltered, %.0f%% L0 hits)\n",
                    Report.Name.c_str(), "live[L0]", "cold",
                    HP.FilteredEventsPerSec, "-", "-", "-", "-",
                    HP.Speedup, 100.0 * HP.FilterHitRate);
        Report.HookPath = HP;
      }

      // Provenance A/B (docs/REPORTS.md): the default filtered live path
      // again, now with a ProvenanceStore fanned out next to the
      // detector.  Two sinks mean no devirtualized lane and no L0 filter
      // — the overhead measured here is the honest total a
      // `--provenance=on` user pays, not just the store's own cost.
      {
        ProvenanceAbResult PA;
        PA.OffEventsPerSec = Report.HookPath.FilteredEventsPerSec;
        std::unique_ptr<RaceRuntime> ProvRT;
        std::unique_ptr<ProvenanceStore> Prov;
        for (uint32_t Rep = 0; Rep != Reps; ++Rep) {
          RaceRuntimeOptions LOpts;
          LOpts.Plan = T.Plan;
          ProvRT = std::make_unique<RaceRuntime>(LOpts);
          Prov = std::make_unique<ProvenanceStore>();
          FanoutHooks Fanout{ProvRT.get(), Prov.get()};
          InterpOptions IOpts;
          IOpts.TraceEveryAccess = true;
          IOpts.Dispatch = DispatchMode::Threaded;
          IOpts.Fused = &Fused;
          Interpreter Interp(*T.Prog, &Fanout, IOpts);
          auto T0 = std::chrono::steady_clock::now();
          InterpResult R = Interp.run();
          double Seconds = secondsSince(T0);
          ProvRT->onRunEnd();
          if (!R.Ok) {
            std::fprintf(stderr, "%s live (provenance): %s\n",
                         Report.Name.c_str(), R.Error.c_str());
            return 1;
          }
          double Eps = Seconds > 0 ? double(T.Events) / Seconds : 0.0;
          if (!PA.Present || Eps > PA.OnEventsPerSec) {
            PA.Present = true;
            PA.OnEventsPerSec = Eps;
          }
        }
        PA.AccessesObserved = Prov->accessesObserved();
        PA.OverheadRatio = PA.OnEventsPerSec > 0
                               ? PA.OffEventsPerSec / PA.OnEventsPerSec
                               : 0.0;
        PA.Agreement = ProvRT->reporter().reportedLocations() ==
                       Serial->reporter().reportedLocations();
        Report.Agreement = Report.Agreement && PA.Agreement;
        std::printf("%-8s %-9s %-5s %12.0f %10s %12s %10s %10s  "
                    "(%.2fx overhead vs filtered)\n",
                    Report.Name.c_str(), "live[pv]", "cold",
                    PA.OnEventsPerSec, "-", "-", "-", "-",
                    PA.OverheadRatio);
        Report.ProvenanceAb = PA;
      }
    }

    std::printf("%-8s agreement: %s\n", Report.Name.c_str(),
                Report.Agreement ? "yes" : "NO!");
    AllAgree = AllAgree && Report.Agreement;
    Reports.push_back(std::move(Report));
    std::remove(T.Path.c_str());
  }

  if (!OutPath.empty()) {
    std::FILE *F = std::fopen(OutPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "cannot open %s\n", OutPath.c_str());
      return 1;
    }
    writeJson(F, Reports, Metrics, Smoke, Reps);
    std::fclose(F);
    std::printf("\nwrote %s\n", OutPath.c_str());
  }

  if (!AllAgree) {
    std::fprintf(stderr, "FAIL: runtimes disagree on reported races\n");
    return 1;
  }
  return 0;
}
