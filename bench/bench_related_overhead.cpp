//===- bench/bench_related_overhead.cpp - Related-work comparison ---------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The related-work dimension of the evaluation (Section 9): prior precise
/// detectors cost 3x-30x because every access pays detector work, while
/// the paper's pipeline proves most accesses redundant before they reach
/// the detector.  This harness runs each CPU-bound benchmark under:
///
///   - Base (no detection),
///   - HERD Full (static pruning + cache + ownership + trie),
///   - Eraser on the full event stream (no static phase, no cache — the
///     paper reports 10x-30x for the original),
///   - the vector-clock happens-before detector on the full stream (the
///     TRaDe-class approach, 4x-15x in the paper).
///
/// Shape to check: wherever the static phase prunes accesses (mtrt, sor2)
/// the full pipeline is dramatically cheaper than any per-access detector;
/// where pruning finds little (tsp), the compiled-C++ detectors converge —
/// the 2002 gap there came from the cache hit being ~10 instructions
/// against an in-VM Java detector path, a ratio a compiled substrate
/// cannot reproduce.
///
//===----------------------------------------------------------------------===//

#include "baselines/EraserDetector.h"
#include "baselines/VectorClockDetector.h"
#include "herd/Pipeline.h"
#include "instr/Instrumenter.h"
#include "workloads/Workloads.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace herd;

namespace {

double timeWithHooks(const Program &P, RuntimeHooks *Hooks, int Repeats) {
  double Best = -1;
  for (int I = 0; I != Repeats; ++I) {
    InterpOptions Opts;
    Interpreter Interp(P, Hooks, Opts);
    auto T0 = std::chrono::steady_clock::now();
    InterpResult R = Interp.run();
    double Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    if (!R.Ok) {
      std::fprintf(stderr, "run failed: %s\n", R.Error.c_str());
      std::exit(1);
    }
    if (Best < 0 || Seconds < Best)
      Best = Seconds;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  uint32_t Scale = argc > 1 ? uint32_t(std::atoi(argv[1])) : 120;
  int Repeats = 3;

  std::printf("Related-work comparison (scale=%u, best of %d):\n", Scale,
              Repeats);
  std::printf("(paper: prior precise detectors 3x-30x; Eraser 10x-30x; "
              "TRaDe-class HB 4x-15x; this paper 13%%-42%%)\n\n");
  std::printf("%-6s %10s %12s %12s %12s | %8s %8s %8s\n", "prog", "base(s)",
              "herd-full", "eraser", "vclock", "full-ovh", "eraser-x",
              "vclock-x");

  for (Workload &W : buildAllWorkloads(Scale)) {
    if (!W.CpuBound)
      continue;
    double Base = timeWithHooks(W.P, nullptr, Repeats);

    // The baselines have no static phase: like the 2002 originals, they
    // pay instrumentation at EVERY access.  Build that program once.
    Program EveryAccess = W.P;
    InstrumenterOptions IOpts;
    IOpts.UseStaticRaceSet = false;
    IOpts.StaticWeakerThan = false;
    IOpts.LoopPeeling = false;
    instrumentProgram(EveryAccess, IOpts, nullptr);

    // HERD Full: the real pipeline (instrumented program + cache + trie).
    double Full = 0;
    {
      double Best = -1;
      for (int I = 0; I != Repeats; ++I) {
        PipelineResult R = runPipeline(W.P, ToolConfig::full());
        if (!R.Run.Ok)
          return 1;
        if (Best < 0 || R.ExecSeconds < Best)
          Best = R.ExecSeconds;
      }
      Full = Best;
    }

    // Eraser and vector clocks observe every access of the
    // fully-instrumented program.
    double Eraser = 0, VClock = 0;
    {
      EraserDetector D;
      Eraser = timeWithHooks(EveryAccess, &D, Repeats);
    }
    {
      VectorClockDetector D;
      VClock = timeWithHooks(EveryAccess, &D, Repeats);
    }

    std::printf("%-6s %10.4f %12.4f %12.4f %12.4f | %7.0f%% %7.2fx %7.2fx\n",
                W.Name.c_str(), Base, Full, Eraser, VClock,
                (Full - Base) / Base * 100.0, Eraser / Base, VClock / Base);
  }

  std::printf(
      "\nNote: the baselines run as compiled C++ observers of an\n"
      "interpreted program, so their multipliers are far milder than\n"
      "2002's in-VM instrumentation.  The reproducible claim is the\n"
      "static-pruning win: on mtrt and sor2 the full pipeline is near\n"
      "zero-overhead while every per-access detector pays for each of the\n"
      "untraced accesses; on tsp (little static pruning) the compiled\n"
      "detectors converge.\n");
  return 0;
}
