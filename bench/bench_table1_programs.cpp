//===- bench/bench_table1_programs.cpp - Table 1 regeneration -------------==//
//
// Part of the HERD project (PLDI 2002 datarace-detector reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 1, "Benchmark programs and their characteristics".
/// The paper reports source lines and dynamic thread counts; our replicas
/// report MiniJ statements (the closest analogue of lines for a generated
/// IR), methods/classes, and the dynamic thread count measured by actually
/// running each program.
///
//===----------------------------------------------------------------------===//

#include "herd/Pipeline.h"
#include "workloads/Workloads.h"

#include <cstdio>

using namespace herd;

int main() {
  std::printf("Table 1: benchmark programs and their characteristics\n");
  std::printf("(paper: LoC / threads — mtrt 3751/3, tsp 706/3, sor2 17742/3,"
              " elevator 523/5, hedc 29948/8)\n\n");
  std::printf("%-10s %10s %8s %8s %8s %12s  %s\n", "program", "statements",
              "classes", "methods", "threads", "instrs-run", "description");

  for (Workload &W : buildAllWorkloads()) {
    ToolConfig Config = ToolConfig::base();
    PipelineResult R = runPipeline(W.P, Config);
    if (!R.Run.Ok) {
      std::printf("%-10s  FAILED: %s\n", W.Name.c_str(),
                  R.Run.Error.c_str());
      return 1;
    }
    std::printf("%-10s %10zu %8zu %8zu %8u %12llu  %s\n", W.Name.c_str(),
                W.P.countInstructions(), W.P.numClasses(), W.P.numMethods(),
                R.Run.ThreadsCreated,
                (unsigned long long)R.Run.InstructionsExecuted,
                W.Description.c_str());
  }
  return 0;
}
